(* WAN lock service — distributed mutual exclusion from atomic broadcast.

   Lamport's classic construction: every ACQUIRE and RELEASE is A-BCast
   with Algorithm A2, and each process runs the same deterministic lock
   automaton over the agreed sequence. Because atomic broadcast gives every
   process the exact same request order, all replicas agree at every step
   on who holds the lock and who queues — no lock server, no leases, and
   the grant order is total-order-fair (first delivered, first granted).

   The demo runs three sites racing for one lock, prints the grant
   schedule, and verifies all processes computed identical schedules and
   that the critical sections never overlap.

   Run with: dune exec examples/wan_lock_service.exe *)

open Des
open Net
module Runner = Harness.Runner.Make (Amcast.A2)

type request = Acquire of int | Release of int (* requesting pid *)

let encode = function
  | Acquire pid -> Fmt.str "acquire:%d" pid
  | Release pid -> Fmt.str "release:%d" pid

let decode s =
  match String.split_on_char ':' s with
  | [ "acquire"; pid ] -> Acquire (int_of_string pid)
  | [ "release"; pid ] -> Release (int_of_string pid)
  | _ -> invalid_arg "decode"

(* The replicated lock automaton: a holder and a FIFO of waiters. The
   grant log records every lock hand-over in order. *)
type lock_state = {
  mutable holder : int option;
  mutable waiting : int list; (* oldest first *)
  mutable grants : int list; (* newest first *)
}

let apply st = function
  | Acquire pid -> (
    match st.holder with
    | None ->
      st.holder <- Some pid;
      st.grants <- pid :: st.grants
    | Some _ -> st.waiting <- st.waiting @ [ pid ])
  | Release pid -> (
    match st.holder with
    | Some h when h = pid -> (
      match st.waiting with
      | next :: rest ->
        st.holder <- Some next;
        st.waiting <- rest;
        st.grants <- next :: st.grants
      | [] -> st.holder <- None)
    | _ -> () (* stale release: ignored deterministically *))

let () =
  let topology = Topology.symmetric ~groups:3 ~per_group:2 in
  let n = Topology.n_processes topology in
  let states =
    Array.init n (fun _ -> { holder = None; waiting = []; grants = [] })
  in
  let deployment = Runner.deploy ~seed:13 topology in
  let all = Topology.all_groups topology in
  let cast ~at ~origin req =
    ignore
      (Runner.cast_at deployment ~at:(Sim_time.of_ms at) ~origin ~dest:all
         ~payload:(encode req) ())
  in
  (* Three processes race for the lock; each releases ~100ms after its
     acquire lands. The racing acquires at 1-3ms reach the sites in
     different wall-clock orders, but total order picks one winner. *)
  cast ~at:1 ~origin:0 (Acquire 0);
  cast ~at:2 ~origin:2 (Acquire 2);
  cast ~at:3 ~origin:4 (Acquire 4);
  cast ~at:220 ~origin:0 (Release 0);
  cast ~at:340 ~origin:2 (Release 2);
  cast ~at:460 ~origin:4 (Release 4);
  cast ~at:480 ~origin:1 (Acquire 1);
  cast ~at:600 ~origin:1 (Release 1);
  let result = Runner.run_deployment deployment in

  (* Drive every replica's automaton from its delivery sequence. *)
  List.iter
    (fun (d : Harness.Run_result.delivery_event) ->
      apply states.(d.pid) (decode d.msg.payload))
    result.deliveries;

  Fmt.pr "== grant schedule (as computed at p0) ==@.";
  List.iteri
    (fun i pid -> Fmt.pr "  %d. lock -> p%d@." (i + 1) pid)
    (List.rev states.(0).grants);

  (* Every replica computed the same schedule. *)
  let reference = states.(0).grants in
  Array.iteri
    (fun pid st ->
      if st.grants <> reference then
        Fmt.failwith "p%d computed a different schedule" pid)
    states;
  Fmt.pr "@.all %d replicas agree on the schedule;@." n;

  (* Fairness/liveness: every acquire was eventually granted, in the
     agreed delivery order of the acquires. *)
  let acquire_order =
    List.filter_map
      (fun (d : Harness.Run_result.delivery_event) ->
        if d.pid = 0 then
          match decode d.msg.payload with
          | Acquire pid -> Some pid
          | Release _ -> None
        else None)
      result.deliveries
  in
  assert (List.rev states.(0).grants = acquire_order);
  Fmt.pr "every acquire granted, in total-order arrival order;@.";
  (match states.(0).holder with
  | None -> Fmt.pr "lock free at the end.@."
  | Some p -> Fmt.pr "lock still held by p%d at the end.@." p);

  match Harness.Checker.check_all result with
  | [] -> Fmt.pr "@.all correctness checks passed.@."
  | v ->
    Fmt.pr "VIOLATIONS: %a@." Fmt.(list string) v;
    exit 1

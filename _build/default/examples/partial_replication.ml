(* Partial replication — the application the paper's introduction motivates.

   Four data centres each replicate one shard of an inventory (EU, US, ASIA,
   LATAM warehouses). A stock transfer touches exactly two shards; a local
   restock touches one. Using genuine atomic multicast (A1), each operation
   involves only the sites that hold the touched shards, yet every replica
   of a shard applies the same operations in the same order — so replicas
   never diverge, even for transfers racing in opposite directions.

   The same workload pushed through the non-genuine broadcast-based
   multicast shows the tradeoff from Sections 1 and 6: same ordering
   guarantees, but every site pays for every operation.

   Run with: dune exec examples/partial_replication.exe *)

open Des
open Net

let shard_names = [| "EU"; "US"; "ASIA"; "LATAM" |]

(* An operation, encoded in the message payload. *)
type op =
  | Restock of { shard : int; qty : int }
  | Transfer of { from_shard : int; to_shard : int; qty : int }

let encode = function
  | Restock { shard; qty } -> Fmt.str "restock:%d:%d" shard qty
  | Transfer { from_shard; to_shard; qty } ->
    Fmt.str "transfer:%d:%d:%d" from_shard to_shard qty

let decode s =
  match String.split_on_char ':' s with
  | [ "restock"; shard; qty ] ->
    Restock { shard = int_of_string shard; qty = int_of_string qty }
  | [ "transfer"; f; t; qty ] ->
    Transfer
      {
        from_shard = int_of_string f;
        to_shard = int_of_string t;
        qty = int_of_string qty;
      }
  | _ -> invalid_arg "decode"

let dest_of = function
  | Restock { shard; _ } -> [ shard ]
  | Transfer { from_shard; to_shard; _ } ->
    List.sort_uniq Int.compare [ from_shard; to_shard ]

(* Each replica applies delivered operations to its shard's stock level.
   Deterministic application + atomic multicast = replica consistency. *)
type replica = { shard : int; mutable stock : int; mutable log : string list }

let apply replica op =
  (match op with
  | Restock { shard; qty } when shard = replica.shard ->
    replica.stock <- replica.stock + qty
  | Transfer { from_shard; qty; _ } when from_shard = replica.shard ->
    replica.stock <- replica.stock - qty
  | Transfer { to_shard; qty; _ } when to_shard = replica.shard ->
    replica.stock <- replica.stock + qty
  | Restock _ | Transfer _ -> ());
  replica.log <- encode op :: replica.log

let run_with (type a) (module P : Amcast.Protocol.S with type t = a) name =
  let module Runner = Harness.Runner.Make (P) in
  let topology = Topology.symmetric ~groups:4 ~per_group:2 in
  let replicas =
    Array.init (Topology.n_processes topology) (fun pid ->
        { shard = Topology.group_of topology pid; stock = 1000; log = [] })
  in
  let deployment = Runner.deploy ~seed:7 topology in
  let ops =
    [
      (0, Restock { shard = 0; qty = 50 });
      (2, Transfer { from_shard = 1; to_shard = 0; qty = 30 });
      (4, Transfer { from_shard = 2; to_shard = 3; qty = 200 });
      (0, Transfer { from_shard = 0; to_shard = 1; qty = 10 });
      (6, Restock { shard = 3; qty = 80 });
      (2, Transfer { from_shard = 1; to_shard = 2; qty = 5 });
      (* Two transfers racing in opposite directions between the same
         shards: atomic multicast orders them identically at both. *)
      (0, Transfer { from_shard = 0; to_shard = 2; qty = 1 });
      (4, Transfer { from_shard = 2; to_shard = 0; qty = 2 });
    ]
  in
  List.iteri
    (fun i (origin, op) ->
      ignore
        (Runner.cast_at deployment
           ~at:(Sim_time.of_ms (1 + (5 * i)))
           ~origin ~dest:(dest_of op) ~payload:(encode op) ()))
    ops;
  let result = Runner.run_deployment deployment in
  (* Apply deliveries in each replica's order. *)
  List.iter
    (fun (d : Harness.Run_result.delivery_event) ->
      apply replicas.(d.pid) (decode d.msg.payload))
    result.deliveries;
  Fmt.pr "@.== %s ==@." name;
  Array.iteri
    (fun pid r ->
      Fmt.pr "  p%d (%s shard): stock=%d after %d ops@." pid
        shard_names.(r.shard) r.stock (List.length r.log))
    replicas;
  (* Replicas of the same shard must agree exactly. *)
  Array.iteri
    (fun pid r ->
      Array.iteri
        (fun pid' r' ->
          if pid < pid' && r.shard = r'.shard then begin
            assert (r.stock = r'.stock);
            assert (r.log = r'.log)
          end)
        replicas)
    replicas;
  Fmt.pr "  replicas of each shard: identical state and logs.@.";
  (match Harness.Checker.check_all result with
  | [] -> ()
  | v ->
    Fmt.pr "VIOLATIONS: %a@." Fmt.(list string) v;
    exit 1);
  Fmt.pr "  inter-site messages: %d (local: %d)@."
    (Harness.Metrics.inter_group_messages result)
    (Harness.Metrics.intra_group_messages result);
  Harness.Metrics.inter_group_messages result

let () =
  Fmt.pr
    "Partial replication across 4 data centres, 8 operations touching 1-2 \
     shards each.@.";
  let genuine = run_with (module Amcast.A1) "A1 (genuine multicast)" in
  let broadcast =
    run_with (module Amcast.Via_broadcast) "broadcast-based multicast"
  in
  Fmt.pr
    "@.The genuine protocol used %d inter-site messages; routing everything \
     through atomic broadcast used %d — %.1fx more, because every site \
     participates in every operation (the tradeoff of Sections 1 and 6).@."
    genuine broadcast
    (float_of_int broadcast /. float_of_int (max 1 genuine))

(* Global ledger — atomic broadcast (Algorithm A2) as a replication engine.

   Three sites each keep a full copy of an account ledger. Every transaction
   is A-BCast with A2; since atomic broadcast delivers the same sequence
   everywhere, each site applies transactions — including ones that would
   conflict under weaker ordering, like concurrent withdrawals racing
   against a balance check — in the same order and the copies stay
   identical. The run also shows A2's signature property: once rounds are
   warm, a transaction crosses site boundaries exactly once.

   Run with: dune exec examples/global_ledger.exe *)

open Des
open Net
module Runner = Harness.Runner.Make (Amcast.A2)

type ledger = { balances : (string, int) Hashtbl.t; mutable applied : int }

let apply ledger payload =
  (* payload: "transfer:from:to:amount" — applied only if funds suffice,
     so application order matters and total order is what saves us. *)
  (match String.split_on_char ':' payload with
  | [ "transfer"; src; dst; amount ] ->
    let amount = int_of_string amount in
    let bal who = Option.value ~default:0 (Hashtbl.find_opt ledger.balances who) in
    if bal src >= amount then begin
      Hashtbl.replace ledger.balances src (bal src - amount);
      Hashtbl.replace ledger.balances dst (bal dst + amount)
    end
  | _ -> invalid_arg "apply");
  ledger.applied <- ledger.applied + 1

let () =
  let topology = Topology.symmetric ~groups:3 ~per_group:2 in
  let n = Topology.n_processes topology in
  let ledgers =
    Array.init n (fun _ ->
        let balances = Hashtbl.create 4 in
        Hashtbl.replace balances "alice" 100;
        Hashtbl.replace balances "bob" 0;
        Hashtbl.replace balances "carol" 0;
        { balances; applied = 0 })
  in
  let deployment = Runner.deploy ~seed:1 topology in
  let all = Topology.all_groups topology in
  (* Two sites race to spend Alice's 100: only one order of these two
     transfers leaves a consistent outcome, and every site must pick the
     same one. A third transaction moves whatever Bob got onward. *)
  let txs =
    [
      (0, 1, "transfer:alice:bob:80");
      (2, 1, "transfer:alice:carol:80");
      (4, 60, "transfer:bob:carol:10");
      (1, 120, "transfer:alice:bob:20");
      (3, 180, "transfer:carol:alice:15");
    ]
  in
  List.iter
    (fun (origin, at_ms, payload) ->
      ignore
        (Runner.cast_at deployment ~at:(Sim_time.of_ms at_ms) ~origin
           ~dest:all ~payload ()))
    txs;
  let result = Runner.run_deployment deployment in
  List.iter
    (fun (d : Harness.Run_result.delivery_event) ->
      apply ledgers.(d.pid) d.msg.payload)
    result.deliveries;

  Fmt.pr "== ledgers after %d transactions ==@." (List.length txs);
  Array.iteri
    (fun pid ledger ->
      Fmt.pr "  p%d (site %d): alice=%d bob=%d carol=%d@." pid
        (Topology.group_of topology pid)
        (Hashtbl.find ledger.balances "alice")
        (Hashtbl.find ledger.balances "bob")
        (Hashtbl.find ledger.balances "carol"))
    ledgers;

  (* All copies identical — and conservation holds. *)
  let snapshot l =
    List.map
      (fun who -> Hashtbl.find l.balances who)
      [ "alice"; "bob"; "carol" ]
  in
  let reference = snapshot ledgers.(0) in
  Array.iter (fun l -> assert (snapshot l = reference)) ledgers;
  assert (List.fold_left ( + ) 0 reference = 100);
  Fmt.pr "  all %d copies identical; funds conserved.@." n;

  Fmt.pr "@.== latency degrees (first tx is a cold start; later ones ride \
          warm rounds) ==@.";
  List.iter
    (fun (id, deg) ->
      Fmt.pr "  %a: %a@." Runtime.Msg_id.pp id
        Fmt.(option ~none:(any "-") int)
        deg)
    (Harness.Metrics.latency_degrees result);

  match Harness.Checker.check_all result with
  | [] -> Fmt.pr "@.all correctness checks passed; deployment quiescent: %b@."
            result.drained
  | v ->
    Fmt.pr "VIOLATIONS: %a@." Fmt.(list string) v;
    exit 1

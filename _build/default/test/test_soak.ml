(* Randomised soak campaigns, one per protocol family — the same engine
   bin/amcast_soak drives, kept small enough for the test suite. *)

let campaign ?(broadcast_only = false) ?(with_crashes = false)
    ?(expect_genuine = false) name proto =
  Alcotest.test_case name `Slow (fun () ->
      let summary =
        Harness.Campaign.run proto ~expect_genuine ~broadcast_only
          ~with_crashes ~seed:99 ~runs:12 ()
      in
      (match summary.failures with
      | [] -> ()
      | o :: _ ->
        Alcotest.failf "campaign violation: %s"
          (String.concat "; " o.violations));
      Alcotest.(check int) "all clean" summary.runs summary.clean)

let suites =
  [
    ( "soak",
      [
        campaign ~with_crashes:true ~expect_genuine:true "a1"
          (module Amcast.A1 : Amcast.Protocol.S);
        campaign ~with_crashes:true ~broadcast_only:true "a2"
          (module Amcast.A2);
        campaign ~with_crashes:true "via-broadcast"
          (module Amcast.Via_broadcast);
        campaign ~with_crashes:true ~expect_genuine:true "fritzke"
          (module Amcast.Fritzke);
        campaign ~expect_genuine:true "skeen" (module Amcast.Skeen);
        campaign ~expect_genuine:true "ring" (module Amcast.Ring);
        campaign ~expect_genuine:true "scalable" (module Amcast.Scalable);
        campaign ~broadcast_only:true "sequencer" (module Amcast.Sequencer);
      ] );
  ]

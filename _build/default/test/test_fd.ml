open Des
open Net
open Runtime

let test_oracle_detects () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine = Engine.create ~tag:(fun () -> "nil") topo in
  List.iter
    (fun pid ->
      Engine.spawn engine pid (fun _ ->
          ((), { Engine.on_receive = (fun ~src:_ () -> ()) })))
    (Topology.all_pids topo);
  let s0 = Engine.services engine 0 in
  let d = Fd.Detector.oracle ~delay:(Sim_time.of_ms 10) s0 in
  let changes = ref 0 in
  d.Fd.Detector.subscribe (fun () -> incr changes);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 5) 2;
  Alcotest.(check bool) "not suspected before" false (d.Fd.Detector.suspects 2);
  Engine.run engine;
  Alcotest.(check bool) "suspected after" true (d.Fd.Detector.suspects 2);
  Alcotest.(check bool) "correct never suspected" false
    (d.Fd.Detector.suspects 1);
  Alcotest.(check int) "one change" 1 !changes

let test_oracle_leader () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine = Engine.create ~tag:(fun () -> "nil") topo in
  List.iter
    (fun pid ->
      Engine.spawn engine pid (fun _ ->
          ((), { Engine.on_receive = (fun ~src:_ () -> ()) })))
    (Topology.all_pids topo);
  let d = Fd.Detector.oracle ~delay:Sim_time.zero (Engine.services engine 1) in
  Alcotest.(check (option int)) "initial leader" (Some 0)
    (Fd.Detector.leader d [ 0; 1; 2 ]);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 1) 0;
  Engine.run engine;
  Alcotest.(check (option int)) "leader rotates" (Some 1)
    (Fd.Detector.leader d [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "all suspected" None
    (Fd.Detector.leader d [ 0 ])

let test_never_suspects () =
  let d = Fd.Detector.never_suspects in
  Alcotest.(check bool) "no suspicion" false (d.Fd.Detector.suspects 42);
  Alcotest.(check (option int)) "leader is first" (Some 7)
    (Fd.Detector.leader d [ 7; 8 ])

(* Heartbeat detector: two processes, one crashes, the survivor suspects it
   after the timeout; no false suspicion while both are alive. *)
let test_heartbeat_detects_crash () =
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let engine =
    Engine.create ~latency:Util.crisp_latency
      ~tag:Fd.Heartbeat.(fun m -> Fmt.str "%a" pp_msg m)
      topo
  in
  let detectors = Hashtbl.create 2 in
  List.iter
    (fun pid ->
      let hb =
        Engine.spawn engine pid (fun services ->
            let hb =
              Fd.Heartbeat.create ~services ~wrap:Fun.id
                ~monitored:(Topology.all_pids topo)
                ~period:(Sim_time.of_ms 5) ~timeout:(Sim_time.of_ms 20)
            in
            (hb, {
               Engine.on_receive =
                 (fun ~src m -> Fd.Heartbeat.handle hb ~src m);
             }))
      in
      Hashtbl.replace detectors pid hb)
    (Topology.all_pids topo);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 100) 1;
  (* No false suspicion at 90ms. *)
  Engine.run ~until:(Sim_time.of_ms 90) engine;
  let d0 = Fd.Heartbeat.detector (Hashtbl.find detectors 0) in
  Alcotest.(check bool) "no false suspicion" false (d0.Fd.Detector.suspects 1);
  (* Crash at 100ms; suspicion by 100 + timeout + slack. *)
  Engine.run ~until:(Sim_time.of_ms 200) engine;
  Alcotest.(check bool) "crash suspected" true (d0.Fd.Detector.suspects 1);
  Fd.Heartbeat.stop (Hashtbl.find detectors 0);
  Fd.Heartbeat.stop (Hashtbl.find detectors 1)

let suites =
  [
    ( "fd",
      [
        Alcotest.test_case "oracle detects crash" `Quick test_oracle_detects;
        Alcotest.test_case "oracle leader rotation" `Quick test_oracle_leader;
        Alcotest.test_case "never_suspects" `Quick test_never_suspects;
        Alcotest.test_case "heartbeat detects crash" `Quick
          test_heartbeat_detects_crash;
      ] );
  ]

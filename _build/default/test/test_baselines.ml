open Des
open Net
module RSkeen = Harness.Runner.Make (Amcast.Skeen)
module RRing = Harness.Runner.Make (Amcast.Ring)
module RScal = Harness.Runner.Make (Amcast.Scalable)
module RSeq = Harness.Runner.Make (Amcast.Sequencer)
module ROpt = Harness.Runner.Make (Amcast.Optimistic)
module RVia = Harness.Runner.Make (Amcast.Via_broadcast)
module RDm = Harness.Runner.Make (Amcast.Detmerge)
module RFrz = Harness.Runner.Make (Amcast.Fritzke)

let single ~origin ~dest =
  Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin ~dest ()

let stream topo seed n kmax =
  let rng = Rng.create seed in
  Harness.Workload.generate ~rng ~topology:topo ~n
    ~dest:(Harness.Workload.Random_groups kmax)
    ~arrival:(`Every (Sim_time.of_ms 15))
    ()

(* ---------- Skeen ---------- *)

let test_skeen_degree_two () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let r = RSkeen.run ~latency:Util.crisp_latency topo (single ~origin:0 ~dest:[ 0; 1 ]) in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check (option int)) "degree 2" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_skeen_stream () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r = RSkeen.run topo (stream topo 41 25 3) in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 25 (Harness.Metrics.delivered_count r)

(* ---------- Ring [4] ---------- *)

let test_ring_degree_k_plus_one () =
  (* Origin in the last group of a 3-group chain: 1 hop to the head, 2
     hand-offs, 1 final acknowledgment = 4 = k + 1. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r =
    RRing.run ~latency:Util.crisp_latency topo
      (single ~origin:4 ~dest:[ 0; 1; 2 ])
  in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check (option int)) "degree k+1" (Some 4)
    (Harness.Metrics.max_latency_degree r)

let test_ring_stream () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r = RRing.run topo (stream topo 42 20 3) in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 20 (Harness.Metrics.delivered_count r)

let test_ring_crash_member () =
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let faults = [ Harness.Runner.crash ~at:(Sim_time.of_ms 2) 4 ] in
  let r =
    RRing.run ~latency:Util.crisp_latency ~faults topo
      (single ~origin:0 ~dest:[ 0; 1 ])
  in
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

(* ---------- Scalable [10] ---------- *)

let test_scalable_degree_four () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let r =
    RScal.run ~latency:Util.crisp_latency topo (single ~origin:0 ~dest:[ 0; 1 ])
  in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check (option int)) "degree 4" (Some 4)
    (Harness.Metrics.max_latency_degree r)

let test_scalable_stream () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r = RScal.run topo (stream topo 43 20 3) in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 20 (Harness.Metrics.delivered_count r)

(* ---------- Sequencer [13] ---------- *)

let test_sequencer_degree_two () =
  (* Best case: the caster shares the sequencer's group. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let r =
    RSeq.run ~latency:Util.crisp_latency topo
      (Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 1) ~origin:1 topo)
  in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check (option int)) "final degree 2" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_sequencer_stream_total_order () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 44 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:15
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Every (Sim_time.of_ms 12))
      ()
  in
  let r = RSeq.run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check int) "all delivered" 15 (Harness.Metrics.delivered_count r)

let test_sequencer_opt_precedes_final () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = RSeq.deploy ~latency:Util.crisp_latency topo in
  ignore
    (RSeq.cast_at d ~at:(Sim_time.of_ms 1) ~origin:1 ~dest:[ 0; 1 ] ());
  let r = RSeq.run_deployment d in
  List.iter
    (fun pid ->
      let opt = Amcast.Sequencer.optimistic_deliveries (RSeq.node d pid) in
      let final = Harness.Run_result.sequence_of r pid in
      Alcotest.(check int)
        (Fmt.str "p%d optimistic count" pid)
        (List.length final) (List.length opt))
    (Topology.all_pids topo)

(* ---------- Optimistic [12] ---------- *)

let test_optimistic_final_degree_two () =
  (* The caster is outside the sequencer's group (the general case the
     paper's table reports): data hop + order hop. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let r =
    ROpt.run ~latency:Util.crisp_latency topo
      (Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 1) ~origin:2 topo)
  in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check (option int)) "final degree 2" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_optimistic_spontaneous_order () =
  (* With symmetric links and a sufficient window, the optimistic order
     matches the final order: zero mistakes. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let config =
    (* The compensation window must cover the spread between intra and
       inter-group latencies (1ms vs 50ms here). *)
    { Amcast.Protocol.Config.default with opt_window = Sim_time.of_ms 60 }
  in
  let d = ROpt.deploy ~latency:Util.crisp_latency ~config topo in
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ());
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 2) ~origin:2 ~dest:[ 0; 1 ] ());
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 3) ~origin:3 ~dest:[ 0; 1 ] ());
  let r = ROpt.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Fmt.str "p%d optimistic mistakes" pid)
        0
        (Amcast.Optimistic.optimistic_mistakes (ROpt.node d pid)))
    (Topology.all_pids topo)

(* ---------- Via-broadcast (non-genuine multicast) ---------- *)

let test_via_broadcast_filters () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r =
    RVia.run ~latency:Util.crisp_latency topo (single ~origin:0 ~dest:[ 0; 2 ])
  in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  (* Only groups 0 and 2 deliver... *)
  let deliverers =
    List.map (fun (d : Harness.Run_result.delivery_event) -> d.pid) r.deliveries
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "addressees only" [ 0; 1; 4; 5 ] deliverers;
  (* ...but the protocol is not genuine: bystander group 1 took part. *)
  Alcotest.(check bool) "non-genuine" true
    (Harness.Checker.genuineness r <> [])

let test_via_broadcast_order_with_streams () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r = RVia.run topo (stream topo 45 20 2) in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check int) "all delivered" 20 (Harness.Metrics.delivered_count r)

(* ---------- Deterministic merge [1] ---------- *)

let test_detmerge_delivers_in_order () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let rng = Rng.create 46 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:10
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Every (Sim_time.of_ms 8))
      ()
  in
  (* Never quiescent: run under a horizon. *)
  let r = RDm.run ~latency:Util.crisp_latency ~until:(Sim_time.of_sec 1.) topo w in
  Util.check_no_violations "integrity" (Harness.Checker.uniform_integrity r);
  Util.check_no_violations "prefix order"
    (Harness.Checker.uniform_prefix_order r);
  Alcotest.(check int) "all delivered" 10 (Harness.Metrics.delivered_count r)

let test_detmerge_multicast_filters () =
  let topo = Topology.symmetric ~groups:3 ~per_group:1 in
  let r =
    RDm.run ~latency:Util.crisp_latency ~until:(Sim_time.of_sec 1.) topo
      (single ~origin:0 ~dest:[ 0; 1 ])
  in
  Util.check_no_violations "integrity" (Harness.Checker.uniform_integrity r);
  let deliverers =
    List.map (fun (d : Harness.Run_result.delivery_event) -> d.pid) r.deliveries
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "addressees only" [ 0; 1 ] deliverers

(* ---------- Fritzke [5] ---------- *)

let test_fritzke_degree_two () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let r =
    RFrz.run ~latency:Util.crisp_latency topo (single ~origin:0 ~dest:[ 0; 1 ])
  in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check (option int)) "degree still 2" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_fritzke_more_consensus_than_a1 () =
  (* The ablation in miniature: same workload, count consensus instances.
     A single-group message costs Fritzke a second instance that A1 skips. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w = single ~origin:0 ~dest:[ 0 ] in
  let module RA1 = Harness.Runner.Make (Amcast.A1) in
  let da1 = RA1.deploy ~latency:Util.crisp_latency topo in
  ignore (RA1.schedule da1 w);
  ignore (RA1.run_deployment da1);
  let dfrz = RFrz.deploy ~latency:Util.crisp_latency topo in
  ignore (RFrz.schedule dfrz w);
  ignore (RFrz.run_deployment dfrz);
  let a1_instances = Amcast.A1.consensus_instances_executed (RA1.node da1 0) in
  let frz_instances =
    Amcast.Fritzke.consensus_instances_executed (RFrz.node dfrz 0)
  in
  Alcotest.(check int) "A1: one instance" 1 a1_instances;
  Alcotest.(check bool)
    (Fmt.str "Fritzke runs more instances (%d > %d)" frz_instances a1_instances)
    true
    (frz_instances > a1_instances)

let test_fritzke_stream () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r = RFrz.run topo (stream topo 47 15 3) in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 15 (Harness.Metrics.delivered_count r)


(* ---------- further edge cases ---------- *)

let test_optimistic_mistakes_with_short_window () =
  (* With a window shorter than the latency spread, spontaneous order
     breaks (local messages jump the queue), but the final sequenced order
     must still satisfy every safety property. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let config =
    { Amcast.Protocol.Config.default with opt_window = Sim_time.of_ms 2 }
  in
  let d = ROpt.deploy ~latency:Util.crisp_latency ~config topo in
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ());
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 2) ~origin:2 ~dest:[ 0; 1 ] ());
  ignore (ROpt.cast_at d ~at:(Sim_time.of_ms 3) ~origin:3 ~dest:[ 0; 1 ] ());
  let r = ROpt.run_deployment d in
  Util.check_no_violations "final order still safe"
    (Harness.Checker.check_all r);
  let mistakes =
    List.fold_left
      (fun acc pid ->
        acc + Amcast.Optimistic.optimistic_mistakes (ROpt.node d pid))
      0 (Topology.all_pids topo)
  in
  Alcotest.(check bool)
    (Fmt.str "some optimistic mistakes occurred (%d)" mistakes)
    true (mistakes > 0)

let test_detmerge_watermark_advances () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let d = RDm.deploy ~latency:Util.crisp_latency topo in
  let r0 = RDm.run_deployment ~until:(Sim_time.of_ms 5) d in
  ignore r0;
  let early = Amcast.Detmerge.watermark (RDm.node d 0) in
  let r1 = RDm.run_deployment ~until:(Sim_time.of_ms 500) d in
  ignore r1;
  let late = Amcast.Detmerge.watermark (RDm.node d 0) in
  Alcotest.(check bool)
    (Fmt.str "watermark advanced (%d -> %d)" early late)
    true (late > early)

let test_a1_with_ack_uniform_rm () =
  (* A1 over the no-oracle uniform reliable multicast: one extra message
     delay in dissemination (degree 3 overall) but every property holds —
     quantifying what the paper's switch to non-uniform rmcast buys. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let config =
    {
      Amcast.Protocol.Config.default with
      rm_mode = Rmcast.Reliable_multicast.Ack_uniform;
    }
  in
  let module RA1 = Harness.Runner.Make (Amcast.A1) in
  let r =
    RA1.run ~latency:Util.crisp_latency ~config topo
      (single ~origin:0 ~dest:[ 0; 1 ])
  in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check (option int)) "one extra hop" (Some 3)
    (Harness.Metrics.max_latency_degree r)

let test_ring_single_group () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let r =
    RRing.run ~latency:Util.crisp_latency topo (single ~origin:4 ~dest:[ 1 ])
  in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "only g1 delivers" 2 (List.length r.deliveries)

let test_skeen_interleaved_batches () =
  (* Messages to disjoint and overlapping destination sets interleaved:
     exercises the blocking rule on unfinalised messages. *)
  let topo = Topology.symmetric ~groups:4 ~per_group:1 in
  let w =
    List.concat
      [
        single ~origin:0 ~dest:[ 0; 1 ];
        single ~origin:2 ~dest:[ 2; 3 ];
        single ~origin:1 ~dest:[ 1; 2 ];
        single ~origin:3 ~dest:[ 0; 3 ];
        single ~origin:0 ~dest:[ 0; 1; 2; 3 ];
      ]
  in
  let r = RSkeen.run topo w in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 5 (Harness.Metrics.delivered_count r)

let test_sequencer_sn_contiguous () =
  (* Final deliveries follow gapless sequence numbers even when assigns
     arrive out of order (jittery links). *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 9 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:12
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Poisson (Sim_time.of_ms 8))
      ()
  in
  let d = RSeq.deploy ~seed:4 ~latency:Net.Latency.wan_default topo in
  ignore (RSeq.schedule d w);
  let r = RSeq.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  List.iter
    (fun pid ->
      let opts = Amcast.Sequencer.optimistic_deliveries (RSeq.node d pid) in
      ignore opts)
    (Topology.all_pids topo);
  Alcotest.(check int) "all delivered" 12 (Harness.Metrics.delivered_count r)

let suites =
  [
    ( "skeen",
      [
        Alcotest.test_case "two groups: degree 2" `Quick test_skeen_degree_two;
        Alcotest.test_case "random stream" `Quick test_skeen_stream;
      ] );
    ( "ring",
      [
        Alcotest.test_case "degree k+1" `Quick test_ring_degree_k_plus_one;
        Alcotest.test_case "random stream" `Quick test_ring_stream;
        Alcotest.test_case "crash of a member" `Quick test_ring_crash_member;
      ] );
    ( "scalable",
      [
        Alcotest.test_case "degree 4" `Quick test_scalable_degree_four;
        Alcotest.test_case "random stream" `Quick test_scalable_stream;
      ] );
    ( "sequencer",
      [
        Alcotest.test_case "final degree 2" `Quick test_sequencer_degree_two;
        Alcotest.test_case "stream total order" `Quick
          test_sequencer_stream_total_order;
        Alcotest.test_case "optimistic precedes final" `Quick
          test_sequencer_opt_precedes_final;
      ] );
    ( "optimistic",
      [
        Alcotest.test_case "final degree 2" `Quick
          test_optimistic_final_degree_two;
        Alcotest.test_case "spontaneous order holds" `Quick
          test_optimistic_spontaneous_order;
      ] );
    ( "via-broadcast",
      [
        Alcotest.test_case "filters deliveries, not genuine" `Quick
          test_via_broadcast_filters;
        Alcotest.test_case "ordered streams" `Quick
          test_via_broadcast_order_with_streams;
      ] );
    ( "detmerge",
      [
        Alcotest.test_case "ordered delivery" `Quick
          test_detmerge_delivers_in_order;
        Alcotest.test_case "multicast filtering" `Quick
          test_detmerge_multicast_filters;
      ] );
    ( "fritzke",
      [
        Alcotest.test_case "degree still 2" `Quick test_fritzke_degree_two;
        Alcotest.test_case "more consensus than A1" `Quick
          test_fritzke_more_consensus_than_a1;
        Alcotest.test_case "random stream" `Quick test_fritzke_stream;
      ] );
    ( "baseline-edges",
      [
        Alcotest.test_case "optimistic: short window makes mistakes" `Quick
          test_optimistic_mistakes_with_short_window;
        Alcotest.test_case "detmerge: watermark advances" `Quick
          test_detmerge_watermark_advances;
        Alcotest.test_case "a1 over ack-uniform rmcast: degree 3" `Quick
          test_a1_with_ack_uniform_rm;
        Alcotest.test_case "ring: single group" `Quick test_ring_single_group;
        Alcotest.test_case "skeen: interleaved batches" `Quick
          test_skeen_interleaved_batches;
        Alcotest.test_case "sequencer: contiguous sequence" `Quick
          test_sequencer_sn_contiguous;
      ] );
  ]

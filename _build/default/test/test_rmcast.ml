open Des
open Net
open Runtime
open Rmcast

type deployment = {
  engine : string Reliable_multicast.msg Engine.t;
  endpoints : (string, string Reliable_multicast.msg) Reliable_multicast.t array;
  delivered : (Topology.pid * Msg_id.t * string) list ref;
}

let deploy ?(seed = 0) ?(mode = Reliable_multicast.Eager_nonuniform) topology =
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency
      ~tag:Reliable_multicast.tag topology
  in
  let delivered = ref [] in
  let n = Topology.n_processes topology in
  let endpoints = Array.make n None in
  List.iter
    (fun pid ->
      let ep =
        Engine.spawn engine pid (fun services ->
            let ep =
              Reliable_multicast.create ~services ~wrap:Fun.id ~mode
                ~oracle_delay:(Sim_time.of_ms 10)
                ~on_deliver:(fun ~id ~origin:_ ~dest:_ payload ->
                  delivered := (pid, id, payload) :: !delivered)
                ()
            in
            ( ep,
              {
                Engine.on_receive =
                  (fun ~src m -> Reliable_multicast.handle ep ~src m);
              } ))
      in
      endpoints.(pid) <- Some ep)
    (Topology.all_pids topology);
  { engine; endpoints = Array.map Option.get endpoints; delivered }

let cast_at d ~at ~origin ~dest payload =
  let id = Msg_id.make ~origin ~seq:0 in
  Engine.at d.engine at (fun () ->
      Reliable_multicast.rmcast d.endpoints.(origin) ~id ~dest payload);
  id

let deliverers d id =
  List.filter_map
    (fun (pid, i, _) -> if Msg_id.equal i id then Some pid else None)
    !(d.delivered)
  |> List.sort Int.compare

let test_validity_all_addressees () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = deploy topo in
  let id = cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2 ] "x" in
  Engine.run d.engine;
  Alcotest.(check (list int)) "exactly the addressees" [ 0; 1; 2 ]
    (deliverers d id)

let test_sender_not_addressee () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = deploy topo in
  let id = cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 2; 3 ] "x" in
  Engine.run d.engine;
  Alcotest.(check (list int)) "caster excluded" [ 2; 3 ] (deliverers d id)

let test_no_duplicates () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy topo in
  let id = cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2 ] "x" in
  Engine.run d.engine;
  let ds = deliverers d id in
  Alcotest.(check (list int)) "once each" [ 0; 1; 2 ] ds

let test_latency_degree_one () =
  (* The non-uniform primitive delivers in one inter-group hop: delivery
     times equal one inter-group latency. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let d = deploy topo in
  ignore (cast_at d ~at:Sim_time.zero ~origin:0 ~dest:[ 0; 1 ] "x");
  Engine.run d.engine;
  Alcotest.(check int) "one inter-group delay" 50_000
    (Sim_time.to_us (Engine.now d.engine))

let test_agreement_origin_crashes_eager () =
  (* Origin crashes mid-cast losing the copies to group 1 entirely; the
     crash-relay rule must still get the message to group 1. *)
  let topo = Topology.make ~sizes:[ 2; 2 ] in
  let d = deploy topo in
  let id = cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2; 3 ] "x" in
  Engine.schedule_crash ~drop:(Engine.Lose_to [ 2; 3 ]) d.engine
    ~at:(Sim_time.of_us 1_100) 0;
  Engine.run d.engine;
  let ds = deliverers d id in
  Alcotest.(check (list int)) "addressees deliver (origin delivered before crashing)"
    [ 0; 1; 2; 3 ] ds

let test_agreement_origin_crashes_uniform () =
  let topo = Topology.make ~sizes:[ 2; 2 ] in
  let d = deploy ~mode:Reliable_multicast.Ack_uniform topo in
  let id = cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2; 3 ] "x" in
  Engine.schedule_crash ~drop:(Engine.Lose_to [ 3 ]) d.engine
    ~at:(Sim_time.of_us 1_100) 0;
  Engine.run d.engine;
  let ds = deliverers d id in
  Alcotest.(check (list int)) "correct addressees all deliver" [ 1; 2; 3 ] ds

let test_uniform_needs_majority () =
  (* In Ack_uniform mode a lone receiver cannot deliver before echoes. *)
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy ~mode:Reliable_multicast.Ack_uniform topo in
  ignore (cast_at d ~at:Sim_time.zero ~origin:0 ~dest:[ 0; 1; 2 ] "x");
  (* After one intra hop (1ms) receivers have one copy (origin's) — with
     majority=2 nobody except... the origin already counts its own copy
     plus network self-send echoes. Check nobody delivered before 1ms. *)
  Engine.run ~until:(Sim_time.of_us 900) d.engine;
  Alcotest.(check int) "no early delivery" 0 (List.length !(d.delivered));
  Engine.run d.engine;
  Alcotest.(check int) "all deliver eventually" 3 (List.length !(d.delivered))

let test_quiescent_failure_free () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = deploy topo in
  ignore (cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] "x");
  Engine.run d.engine;
  (* Eager mode, no failures: exactly |dest| data messages. *)
  Alcotest.(check int) "minimal message count" 1
    (Network.sent_total (Engine.network d.engine))

let suites =
  [
    ( "rmcast",
      [
        Alcotest.test_case "validity" `Quick test_validity_all_addressees;
        Alcotest.test_case "caster not addressee" `Quick
          test_sender_not_addressee;
        Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
        Alcotest.test_case "latency degree one" `Quick
          test_latency_degree_one;
        Alcotest.test_case "agreement under crash (eager)" `Quick
          test_agreement_origin_crashes_eager;
        Alcotest.test_case "agreement under crash (uniform)" `Quick
          test_agreement_origin_crashes_uniform;
        Alcotest.test_case "uniform waits for echoes" `Quick
          test_uniform_needs_majority;
        Alcotest.test_case "minimal traffic when failure-free" `Quick
          test_quiescent_failure_free;
      ] );
  ]

test/test_a1.ml: Alcotest Amcast Des Harness Int Latency List Net Rng Runtime Sim_time Topology Util

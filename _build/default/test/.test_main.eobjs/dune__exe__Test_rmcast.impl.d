test/test_rmcast.ml: Alcotest Array Des Engine Fun Int List Msg_id Net Network Option Reliable_multicast Rmcast Runtime Sim_time Topology Util

test/test_fd.ml: Alcotest Des Engine Fd Fmt Fun Hashtbl List Net Runtime Sim_time Topology Util

test/test_runtime.ml: Alcotest Des Engine List Msg_id Net Runtime Services Sim_time Topology Trace Util

test/test_properties.ml: Amcast Consensus Des Engine Event_queue Fd Fmt Fun Harness Hashtbl Int Latency List Msg_id Net Option QCheck2 Reliable_multicast Rmcast Rng Runtime Sim_time Topology Util

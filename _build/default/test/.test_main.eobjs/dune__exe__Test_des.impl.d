test/test_des.ml: Alcotest Array Des Event_queue Fun Int List Option Rng Scheduler Sim_time

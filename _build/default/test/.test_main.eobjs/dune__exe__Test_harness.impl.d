test/test_harness.ml: Alcotest Amcast Astring_contains Des Fmt Fun Harness Lclock List Net Option Rng Runtime Sim_time Topology Util

test/util.ml: Alcotest Des Harness Net QCheck2 QCheck_alcotest Runtime

test/test_consensus.ml: Alcotest Array Consensus Des Engine Fd Fmt Fun Hashtbl List Net Network Option Runtime Scheduler Sim_time Topology Util

test/test_baselines.ml: Alcotest Amcast Des Fmt Harness Int List Net Rmcast Rng Sim_time Topology Util

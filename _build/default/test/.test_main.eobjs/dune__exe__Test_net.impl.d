test/test_net.ml: Alcotest Des Latency List Net Network Rng Scheduler Sim_time Topology Util

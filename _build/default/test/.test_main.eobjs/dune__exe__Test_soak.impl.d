test/test_soak.ml: Alcotest Amcast Harness String

test/test_a2.ml: Alcotest Amcast Des Fmt Harness List Net Rng Runtime Sim_time Topology Util

test/test_rsm.ml: Alcotest Amcast Des Fmt Harness Hashtbl Int List Net QCheck2 Rng Rsm Runtime Sim_time String Topology Util

test/test_partitions.ml: Alcotest Amcast Des Engine Harness List Net Network Rng Runtime Scheduler Sim_time Topology Util

(* State-machine replication over the protocols: replica consistency under
   partial replication, full replication, crashes and chained commands. *)

open Des
open Net

(* A tiny sharded key-value store: each group replicates one shard; a
   command touches one or two shards. *)
type kv_cmd =
  | Set of { shard : int; key : string; value : int }
  | Move of { from_shard : int; to_shard : int; key : string }

let kv_spec ~groups : ((string, int) Hashtbl.t, kv_cmd) Rsm.spec =
  ignore groups;
  {
    initial = (fun () -> Hashtbl.create 8);
    apply =
      (fun state cmd ->
        (match cmd with
        | Set { key; value; _ } -> Hashtbl.replace state key value
        | Move { key; _ } -> (
          match Hashtbl.find_opt state key with
          | Some v ->
            Hashtbl.remove state key;
            Hashtbl.replace state (key ^ "'") v
          | None -> Hashtbl.replace state (key ^ "'") 0));
        state);
    encode =
      (function
      | Set { shard; key; value } -> Fmt.str "set:%d:%s:%d" shard key value
      | Move { from_shard; to_shard; key } ->
        Fmt.str "move:%d:%d:%s" from_shard to_shard key);
    decode =
      (fun s ->
        match String.split_on_char ':' s with
        | [ "set"; shard; key; value ] ->
          Set
            {
              shard = int_of_string shard;
              key;
              value = int_of_string value;
            }
        | [ "move"; f; t; key ] ->
          Move
            { from_shard = int_of_string f; to_shard = int_of_string t; key }
        | _ -> invalid_arg "decode");
    placement =
      (function
      | Set { shard; _ } -> [ shard ]
      | Move { from_shard; to_shard; _ } ->
        List.sort_uniq Int.compare [ from_shard; to_shard ]);
  }

module Kv_a1 = Rsm.Make (Amcast.A1)

let test_partial_replication_consistency () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let t =
    Kv_a1.deploy ~latency:Util.crisp_latency ~spec:(kv_spec ~groups:3) topo
  in
  let cmds =
    [
      (0, Set { shard = 0; key = "a"; value = 1 });
      (2, Set { shard = 1; key = "b"; value = 2 });
      (4, Set { shard = 2; key = "c"; value = 3 });
      (0, Move { from_shard = 0; to_shard = 1; key = "a" });
      (2, Move { from_shard = 1; to_shard = 0; key = "b" });
      (4, Set { shard = 0; key = "a"; value = 9 });
    ]
  in
  List.iteri
    (fun i (origin, cmd) ->
      ignore (Kv_a1.submit t ~at:(Sim_time.of_ms (1 + (3 * i))) ~origin cmd))
    cmds;
  let r = Kv_a1.run t in
  Util.check_no_violations "protocol safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Util.check_no_violations "replica consistency" (Kv_a1.check_consistency t);
  (* Shard 0's replicas saw exactly the commands placed on shard 0. *)
  let log0 = Kv_a1.log_of t 0 in
  Alcotest.(check int) "shard-0 commands" 4 (List.length log0)

let test_partial_replication_under_crash () =
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let t =
    Kv_a1.deploy ~latency:Util.crisp_latency ~spec:(kv_spec ~groups:2) topo
  in
  Runtime.Engine.schedule_crash ~drop:Runtime.Engine.Lose_all_inflight
    (Kv_a1.engine t) ~at:(Sim_time.of_ms 4) 1;
  List.iteri
    (fun i (origin, cmd) ->
      ignore (Kv_a1.submit t ~at:(Sim_time.of_ms (1 + (3 * i))) ~origin cmd))
    [
      (0, Set { shard = 0; key = "x"; value = 1 });
      (3, Move { from_shard = 1; to_shard = 0; key = "x" });
      (4, Set { shard = 1; key = "y"; value = 2 });
    ];
  let r = Kv_a1.run t in
  Util.check_no_violations "protocol safety" (Harness.Checker.check_all r);
  (* The crashed replica p1 may lag; consistency must hold among the
     surviving replicas of each group. *)
  let survivors_agree =
    List.for_all
      (fun g ->
        let survivors =
          List.filter
            (fun pid -> Harness.Run_result.correct r pid)
            (Topology.members topo g)
        in
        match survivors with
        | [] -> true
        | first :: rest ->
          let ref_log =
            List.map (kv_spec ~groups:2).encode (Kv_a1.log_of t first)
          in
          List.for_all
            (fun pid ->
              List.map (kv_spec ~groups:2).encode (Kv_a1.log_of t pid)
              = ref_log)
            rest)
      (Topology.all_groups topo)
  in
  Alcotest.(check bool) "surviving replicas agree" true survivors_agree

(* A replicated counter over atomic broadcast: full replication, every
   copy identical. *)
module Counter_a2 = Rsm.Make (Amcast.A2)

let counter_spec topo : (int, int) Rsm.spec =
  {
    initial = (fun () -> 0);
    apply = (fun state delta -> state + delta);
    encode = string_of_int;
    decode = int_of_string;
    placement = (fun _ -> Topology.all_groups topo);
  }

let test_full_replication_counter () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let t =
    Counter_a2.deploy ~latency:Util.crisp_latency ~spec:(counter_spec topo)
      topo
  in
  List.iteri
    (fun i delta ->
      ignore
        (Counter_a2.submit t
           ~at:(Sim_time.of_ms (1 + (7 * i)))
           ~origin:(i mod 6) delta))
    [ 5; -2; 10; 1; -5; 3 ];
  let r = Counter_a2.run t in
  Util.check_no_violations "protocol safety" (Harness.Checker.check_all r);
  Util.check_no_violations "replica consistency"
    (Counter_a2.check_consistency t);
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Fmt.str "p%d counter" pid)
        12
        (Counter_a2.state_of t pid))
    (Topology.all_pids topo)

let test_incremental_runs () =
  (* submit / run / submit / run: states keep advancing, no re-application
     of old commands. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let t =
    Counter_a2.deploy ~latency:Util.crisp_latency ~spec:(counter_spec topo)
      topo
  in
  ignore (Counter_a2.submit t ~at:(Sim_time.of_ms 1) ~origin:0 100);
  ignore (Counter_a2.run t);
  Alcotest.(check int) "after first run" 100 (Counter_a2.state_of t 3);
  let now = Runtime.Engine.now (Counter_a2.engine t) in
  ignore
    (Counter_a2.submit t ~at:(Sim_time.add now (Sim_time.of_ms 10)) ~origin:2
       (-40));
  ignore (Counter_a2.run t);
  Alcotest.(check int) "after second run" 60 (Counter_a2.state_of t 3);
  Alcotest.(check int) "log length" 2 (List.length (Counter_a2.log_of t 3));
  Util.check_no_violations "replica consistency"
    (Counter_a2.check_consistency t)

(* Randomised submissions over random shard placements: consistency
   always holds. *)
let prop_rsm_random_consistency (seed, n_cmds) =
    let topo = Topology.symmetric ~groups:3 ~per_group:2 in
    let t =
      Kv_a1.deploy ~seed ~latency:Net.Latency.wan_default
        ~spec:(kv_spec ~groups:3) topo
    in
    let rng = Rng.create seed in
    for i = 0 to n_cmds - 1 do
      let cmd =
        if Rng.bool rng then
          Set
            {
              shard = Rng.int rng 3;
              key = Fmt.str "k%d" (Rng.int rng 4);
              value = Rng.int rng 100;
            }
        else
          Move
            {
              from_shard = Rng.int rng 3;
              to_shard = Rng.int rng 3;
              key = Fmt.str "k%d" (Rng.int rng 4);
            }
      in
      ignore
        (Kv_a1.submit t
           ~at:(Sim_time.of_ms (1 + (11 * i)))
           ~origin:(Rng.int rng 6) cmd)
    done;
    let r = Kv_a1.run t in
    Harness.Checker.check_all r = [] && Kv_a1.check_consistency t = []

let suites =
  [
    ( "rsm",
      [
        Alcotest.test_case "partial replication consistency" `Quick
          test_partial_replication_consistency;
        Alcotest.test_case "partial replication under crash" `Quick
          test_partial_replication_under_crash;
        Alcotest.test_case "full replication counter" `Quick
          test_full_replication_counter;
        Alcotest.test_case "incremental runs" `Quick test_incremental_runs;
        Util.qcheck_case ~count:20 ~name:"random workloads stay consistent"
          QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 8))
          prop_rsm_random_consistency;
      ] );
  ]

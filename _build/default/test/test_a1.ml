open Des
open Net

let ms_ = Sim_time.of_ms
module R = Harness.Runner.Make (Amcast.A1)

let run ?seed ?config ?faults ?until topology workload =
  R.run ?seed ~latency:Util.crisp_latency ?config ?faults ?until topology
    workload

let test_single_group_self () =
  (* Multicast to the caster's own group only: latency degree 0. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w = Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0 ] () in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "deliveries" 2 (List.length r.deliveries);
  Alcotest.(check (option int)) "latency degree 0" (Some 0)
    (Harness.Metrics.max_latency_degree r)

let test_single_remote_group () =
  (* Multicast to one remote group: latency degree 1. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w = Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 1 ] () in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "only g1 delivers" 2 (List.length r.deliveries);
  Alcotest.(check (option int)) "latency degree 1" (Some 1)
    (Harness.Metrics.max_latency_degree r)

let test_two_groups_degree_two () =
  (* Theorem 4.1: a message multicast to two groups has ∆ = 2. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w =
    Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ()
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all four deliver" 4 (List.length r.deliveries);
  Alcotest.(check (option int)) "latency degree 2" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_genuineness_bystander_groups () =
  (* Four groups, message to two of them: the other groups' processes must
     neither send nor receive anything. *)
  let topo = Topology.symmetric ~groups:4 ~per_group:2 in
  let w =
    Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 2 ] ()
  in
  let r = run topo w in
  Util.check_no_violations "genuine" (Harness.Checker.genuineness r);
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_concurrent_multicasts_order () =
  (* Two concurrent messages to overlapping group sets must be delivered in
     the same relative order everywhere. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let w =
    Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ()
    @ Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:2 ~dest:[ 0; 1; 2 ] ()
    @ Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:4 ~dest:[ 1; 2 ] ()
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all ~expect_genuine:true r)

let test_stream_of_multicasts () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 17 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:30
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Every (Sim_time.of_ms 20))
      ()
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check int) "all messages delivered somewhere" 30
    (Harness.Metrics.delivered_count r)

let test_crash_non_coordinator () =
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let w =
    Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ()
  in
  let faults = [ Harness.Runner.crash ~at:(Sim_time.of_ms 2) 4 ] in
  let r = run topo ~faults w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_crash_caster_loses_group () =
  (* The caster crashes and its copies to one group are lost: the TS
     message from the other group must propagate m (paper footnote 4).
     Groups keep a correct majority so consensus stays live. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let d =
    R.deploy ~latency:Util.crisp_latency
      ~faults:
        [
          Harness.Runner.crash
            ~drop:(Runtime.Engine.Lose_to [ 3; 4; 5 ])
            ~at:(Sim_time.of_us 1_100) 0;
        ]
      topo
  in
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ());
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  (* p0 crashed; survivors of both groups must deliver. *)
  let pids =
    List.map (fun (d : Harness.Run_result.delivery_event) -> d.pid) r.deliveries
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "survivors deliver" [ 1; 2; 3; 4; 5 ] pids

let test_crash_whole_casting_attempt_lost () =
  (* Everything the caster sent is lost: nobody learns m, nobody may
     deliver it — and the run must still terminate quietly. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d =
    R.deploy ~latency:Util.crisp_latency
      ~faults:
        [
          Harness.Runner.crash ~drop:Runtime.Engine.Lose_all_inflight
            ~at:(Sim_time.of_us 1_050) 0;
        ]
      topo
  in
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ());
  let r = R.run_deployment d in
  Alcotest.(check int) "no deliveries" 0 (List.length r.deliveries);
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_quiescent_after_deliveries () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w =
    Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ()
  in
  let r = run topo w in
  Util.check_no_violations "quiescence" (Harness.Checker.quiescence r)

let test_determinism () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let make () =
    let rng = Rng.create 5 in
    let w =
      Harness.Workload.generate ~rng ~topology:topo ~n:10
        ~dest:(Harness.Workload.Random_groups 2)
        ~arrival:(`Poisson (Sim_time.of_ms 30))
        ()
    in
    let r = R.run ~seed:11 topo w in
    List.map
      (fun (d : Harness.Run_result.delivery_event) ->
        (d.pid, d.msg.Amcast.Msg.id, Sim_time.to_us d.at))
      r.deliveries
  in
  Alcotest.(check bool) "bit-identical delivery schedule" true
    (make () = make ())

let test_wan_jitter_run () =
  (* Same scenario under the jittery WAN model. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:3 in
  let rng = Rng.create 23 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:20
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Sim_time.of_ms 15))
      ()
  in
  let r = R.run ~seed:3 topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_member_learns_via_decision () =
  (* p1 never receives the rmcast copy (dropped at the caster's crash);
     it must learn m from its group's consensus decision (the pseudocode's
     line 30 "add message" path) and still deliver consistently. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let d =
    R.deploy ~latency:Util.crisp_latency
      ~faults:
        [
          Harness.Runner.crash
            ~drop:(Runtime.Engine.Lose_to [ 1 ])
            ~at:(Sim_time.of_us 1_050) 0;
        ]
      topo
  in
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] ());
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  let pids =
    List.map (fun (e : Harness.Run_result.delivery_event) -> e.pid)
      r.deliveries
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check bool) "p1 delivered via the decision path" true
    (List.mem 1 pids)

let test_ts_outruns_data () =
  (* Asymmetric latency matrix violating the triangle inequality: the
     origin's direct link to group 2 is slower than the two-hop path
     through group 1, so group 2 sees (TS, m) before the reliable-multicast
     copy — the case where the TS message itself must introduce m
     (pseudocode line 10's "receive(TS, m)" disjunct, and footnote 4). *)
  let inter =
    [|
      [| ms_ 1; ms_ 10; ms_ 200 |];
      [| ms_ 10; ms_ 1; ms_ 10 |];
      [| ms_ 200; ms_ 10; ms_ 1 |];
    |]
  in
  let latency = Latency.matrix ~intra:(ms_ 1) ~inter () in
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let d = R.deploy ~latency topo in
  let id = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2 ] () in
  let r = R.run_deployment d in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all six deliver" 6
    (List.length (Harness.Run_result.deliveries_of r id));
  (* In this run the protocol acts on the 2-hop TS path long before the
     1-hop direct copy lands (10+10ms vs 200ms): group 2's own proposal is
     then causally 2 hops deep, and the deliveries that wait for it sit at
     3. The run is *faster* in wall clock and *deeper* in hops — the
     latency degree of the algorithm (a minimum over runs) is still 2, as
     the symmetric-latency test above measures. *)
  Alcotest.(check (option int)) "degree 3 on this adversarial run" (Some 3)
    (Harness.Metrics.latency_degree r id)

let test_heartbeat_fd_mode () =
  (* A1 with the message-based heartbeat detector instead of the oracle:
     the coordinator of group 0 crashes losing its in-flight messages, and
     the protocol still completes — now with zero ground-truth access on
     the consensus path. Heartbeats never stop, so run under a horizon. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let config =
    {
      Amcast.Protocol.Config.default with
      fd_mode =
        Amcast.Protocol.Config.Heartbeat
          { period = Sim_time.of_ms 5; timeout = Sim_time.of_ms 30 };
      consensus_timeout = Sim_time.of_ms 80;
    }
  in
  let d =
    R.deploy ~latency:Util.crisp_latency ~config
      ~faults:
        [
          Harness.Runner.crash ~drop:Runtime.Engine.Lose_all_inflight
            ~at:(Sim_time.of_ms 2) 0;
        ]
      topo
  in
  let id = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:1 ~dest:[ 0; 1 ] () in
  let r = R.run_deployment ~until:(Sim_time.of_sec 3.) d in
  Util.check_no_violations "integrity" (Harness.Checker.uniform_integrity r);
  Util.check_no_violations "prefix order"
    (Harness.Checker.uniform_prefix_order r);
  let survivors =
    List.map (fun (e : Harness.Run_result.delivery_event) -> e.pid)
      (Harness.Run_result.deliveries_of r id)
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "all survivors deliver" [ 1; 2; 3; 4; 5 ]
    survivors

let test_scale_six_groups () =
  (* A larger deployment: 6 sites x 4 processes, 40 multicasts. *)
  let topo = Topology.symmetric ~groups:6 ~per_group:4 in
  let rng = Rng.create 71 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:40
      ~dest:(Harness.Workload.Random_groups 4)
      ~arrival:(`Poisson (Sim_time.of_ms 12))
      ()
  in
  let r = R.run ~seed:8 topo w in
  Util.check_no_violations "safety"
    (Harness.Checker.check_all ~expect_genuine:true r);
  Alcotest.(check int) "all delivered" 40 (Harness.Metrics.delivered_count r)

let suites =
  [
    ( "a1",
      [
        Alcotest.test_case "own group only: degree 0" `Quick
          test_single_group_self;
        Alcotest.test_case "one remote group: degree 1" `Quick
          test_single_remote_group;
        Alcotest.test_case "two groups: degree 2 (Thm 4.1)" `Quick
          test_two_groups_degree_two;
        Alcotest.test_case "genuineness wrt bystanders" `Quick
          test_genuineness_bystander_groups;
        Alcotest.test_case "concurrent overlapping multicasts" `Quick
          test_concurrent_multicasts_order;
        Alcotest.test_case "stream of 30 multicasts" `Quick
          test_stream_of_multicasts;
        Alcotest.test_case "crash: non-coordinator" `Quick
          test_crash_non_coordinator;
        Alcotest.test_case "crash: caster loses one group" `Quick
          test_crash_caster_loses_group;
        Alcotest.test_case "crash: cast entirely lost" `Quick
          test_crash_whole_casting_attempt_lost;
        Alcotest.test_case "quiescent after deliveries" `Quick
          test_quiescent_after_deliveries;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "jittery WAN run" `Quick test_wan_jitter_run;
        Alcotest.test_case "member learns via decision" `Quick
          test_member_learns_via_decision;
        Alcotest.test_case "TS outruns the data message" `Quick
          test_ts_outruns_data;
        Alcotest.test_case "heartbeat failure detector mode" `Quick
          test_heartbeat_fd_mode;
        Alcotest.test_case "scale: 6 groups x 4" `Slow test_scale_six_groups;
      ] );
  ]

open Net
open Des

let test_topology_basics () =
  let t = Topology.make ~sizes:[ 2; 3; 1 ] in
  Alcotest.(check int) "n" 6 (Topology.n_processes t);
  Alcotest.(check int) "groups" 3 (Topology.n_groups t);
  Alcotest.(check (list int)) "g0" [ 0; 1 ] (Topology.members t 0);
  Alcotest.(check (list int)) "g1" [ 2; 3; 4 ] (Topology.members t 1);
  Alcotest.(check (list int)) "g2" [ 5 ] (Topology.members t 2);
  Alcotest.(check int) "group_of 3" 1 (Topology.group_of t 3);
  Alcotest.(check bool) "same group" true (Topology.same_group t 2 4);
  Alcotest.(check bool) "different group" false (Topology.same_group t 1 2);
  Alcotest.(check (list int)) "pids_of_groups dedup" [ 0; 1; 5 ]
    (Topology.pids_of_groups t [ 2; 0; 0 ]);
  Alcotest.(check (list int)) "others_in_group" [ 2; 4 ]
    (Topology.others_in_group t 3)

let test_topology_invalid () =
  Alcotest.check_raises "empty group"
    (Invalid_argument "Topology.make: empty group") (fun () ->
      ignore (Topology.make ~sizes:[ 2; 0 ]));
  Alcotest.check_raises "no groups" (Invalid_argument "Topology.make: no groups")
    (fun () -> ignore (Topology.make ~sizes:[]))

let test_latency_asymmetry () =
  let t = Topology.symmetric ~groups:2 ~per_group:2 in
  ignore t;
  let rng = Rng.create 0 in
  let lat = Util.crisp_latency in
  Alcotest.(check int) "intra" 1_000
    (Sim_time.to_us (Latency.sample lat rng ~src_group:0 ~dst_group:0));
  Alcotest.(check int) "inter" 50_000
    (Sim_time.to_us (Latency.sample lat rng ~src_group:0 ~dst_group:1))

let test_latency_matrix () =
  let inter =
    [|
      [| Sim_time.zero; Sim_time.of_ms 80 |];
      [| Sim_time.of_ms 120; Sim_time.zero |];
    |]
  in
  let lat = Latency.matrix ~intra:(Sim_time.of_ms 1) ~inter () in
  Alcotest.(check int) "asymmetric 0->1" 80_000
    (Sim_time.to_us (Latency.base lat ~src_group:0 ~dst_group:1));
  Alcotest.(check int) "asymmetric 1->0" 120_000
    (Sim_time.to_us (Latency.base lat ~src_group:1 ~dst_group:0));
  Alcotest.(check int) "intra" 1_000
    (Sim_time.to_us (Latency.base lat ~src_group:0 ~dst_group:0))

let test_latency_jitter_bounds () =
  let lat =
    Latency.uniform ~intra:(Sim_time.of_ms 1) ~inter:(Sim_time.of_ms 50)
      ~inter_jitter:(Sim_time.of_ms 5) ()
  in
  let rng = Rng.create 9 in
  for _ = 1 to 500 do
    let d = Sim_time.to_us (Latency.sample lat rng ~src_group:0 ~dst_group:1) in
    if d < 50_000 || d >= 55_000 then Alcotest.failf "jitter out of range: %d" d
  done

let make_net ?(latency = Util.crisp_latency) topology =
  let sched = Scheduler.create () in
  let rng = Rng.create 1 in
  let received = ref [] in
  let net =
    Network.create ~sched ~topology ~latency ~rng
      ~deliver:(fun ~src ~dst payload ->
        received := (src, dst, payload, Scheduler.now sched) :: !received)
  in
  (sched, net, received)

let test_network_delivers () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let sched, net, received = make_net topo in
  Network.send net ~src:0 ~dst:1 "local";
  Network.send net ~src:0 ~dst:2 "remote";
  Scheduler.run sched;
  let r = List.rev !received in
  (match r with
  | [ (0, 1, "local", t1); (0, 2, "remote", t2) ] ->
    Alcotest.(check int) "intra delay" 1_000 (Sim_time.to_us t1);
    Alcotest.(check int) "inter delay" 50_000 (Sim_time.to_us t2)
  | _ -> Alcotest.fail "unexpected deliveries");
  Alcotest.(check int) "total" 2 (Network.sent_total net);
  Alcotest.(check int) "inter" 1 (Network.sent_inter_group net);
  Alcotest.(check int) "intra" 1 (Network.sent_intra_group net)

let test_network_hold () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let sched, net, received = make_net topo in
  Network.send net ~src:0 ~dst:1 "early";
  Network.hold net ~src_group:0 ~dst_group:1 ~until:(Sim_time.of_ms 500);
  Network.send net ~src:0 ~dst:1 "late";
  Scheduler.run sched;
  List.iter
    (fun (_, _, _, t) ->
      if Sim_time.compare t (Sim_time.of_ms 500) < 0 then
        Alcotest.failf "delivered before hold expired: %a" Sim_time.pp t)
    !received;
  Alcotest.(check int) "both delivered" 2 (List.length !received)

let test_network_drop_inflight () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let sched, net, received = make_net topo in
  Network.send net ~src:0 ~dst:2 "a";
  Network.send net ~src:0 ~dst:3 "b";
  Network.send net ~src:1 ~dst:2 "c";
  let dropped = Network.drop_inflight net (fun ~src ~dst:_ -> src = 0) in
  Alcotest.(check int) "dropped count" 2 dropped;
  Scheduler.run sched;
  (match !received with
  | [ (1, 2, "c", _) ] -> ()
  | _ -> Alcotest.fail "only p1's message should survive");
  Alcotest.(check int) "in flight drained" 0 (Network.in_flight net)

let test_network_send_filter () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let sched, net, received = make_net topo in
  Network.set_send_filter net (Some (fun ~src ~dst:_ -> src <> 1));
  Network.send net ~src:0 ~dst:2 "keep";
  Network.send net ~src:1 ~dst:2 "muted";
  Scheduler.run sched;
  Alcotest.(check int) "only unfiltered arrives" 1 (List.length !received);
  Alcotest.(check int) "filtered not counted" 1 (Network.sent_total net)

let test_network_on_send_tap () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let sched, net, _ = make_net topo in
  let tapped = ref 0 in
  Network.on_send net (fun ~src:_ ~dst:_ _ -> incr tapped);
  Network.send net ~src:0 ~dst:1 "x";
  Network.send net ~src:1 ~dst:0 "y";
  Scheduler.run sched;
  Alcotest.(check int) "tap sees every send" 2 !tapped

let suites =
  [
    ( "net",
      [
        Alcotest.test_case "topology basics" `Quick test_topology_basics;
        Alcotest.test_case "topology invalid" `Quick test_topology_invalid;
        Alcotest.test_case "latency asymmetry" `Quick test_latency_asymmetry;
        Alcotest.test_case "latency matrix" `Quick test_latency_matrix;
        Alcotest.test_case "latency jitter bounds" `Quick
          test_latency_jitter_bounds;
        Alcotest.test_case "network delivers" `Quick test_network_delivers;
        Alcotest.test_case "network hold" `Quick test_network_hold;
        Alcotest.test_case "network drop inflight" `Quick
          test_network_drop_inflight;
        Alcotest.test_case "network send filter" `Quick
          test_network_send_filter;
        Alcotest.test_case "network send tap" `Quick test_network_on_send_tap;
      ] );
  ]

open Des
open Net
module R = Harness.Runner.Make (Amcast.A2)

let all_groups topo = Topology.all_groups topo

let run ?seed ?config ?faults topology workload =
  R.run ?seed ~latency:Util.crisp_latency ?config ?faults topology workload

let test_single_broadcast () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w =
    Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 1) ~origin:0 topo
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check int) "everyone delivers" 4 (List.length r.deliveries)

let test_cold_start_degree_two () =
  (* Theorem 5.2: a broadcast while the algorithm is quiescent costs two
     inter-group delays. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let w =
    Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 1) ~origin:0 topo
  in
  let r = run topo w in
  Alcotest.(check (option int)) "degree 2 from cold" (Some 2)
    (Harness.Metrics.max_latency_degree r)

let test_warm_rounds_degree_one () =
  (* Theorem 5.1: a broadcast that lands in an already-running round is
     delivered with latency degree 1. Warm the deployment with a first
     broadcast, then cast the probe just before the next round's consensus
     closes. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let config =
    { Amcast.Protocol.Config.default with round_grace = Sim_time.of_ms 20 }
  in
  let d = R.deploy ~latency:Util.crisp_latency ~config topo in
  ignore
    (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0
       ~dest:(all_groups topo) ());
  (* The first broadcast is delivered at the caster's group around
     t=105ms, which opens round 2 there with a 20ms proposal grace. A
     probe cast inside that window rides round 2 and must arrive with
     latency degree 1. *)
  let probe =
    R.cast_at d ~at:(Sim_time.of_ms 110) ~origin:1 ~dest:(all_groups topo) ()
  in
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Alcotest.(check int) "probe delivered at degree 1" 1 (Util.degree_of r probe)

let test_quiescence_after_finite_broadcasts () =
  (* Proposition A.9: finitely many broadcasts => the deployment stops
     sending messages (the run drains). *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 7 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:10
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Every (Sim_time.of_ms 10))
      ()
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Util.check_no_violations "quiescence" (Harness.Checker.quiescence r);
  Alcotest.(check int) "all delivered" 10 (Harness.Metrics.delivered_count r)

let test_restart_after_quiescence () =
  (* Prediction mistakes are tolerated: a broadcast after quiescence is
     still delivered by everyone. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  ignore
    (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:(all_groups topo) ());
  let r1 = R.run_deployment d in
  Util.check_no_violations "first message safe" (Harness.Checker.check_all r1);
  let wake =
    R.cast_at d
      ~at:(Sim_time.add (Runtime.Engine.now (R.engine d)) (Sim_time.of_ms 100))
      ~origin:3 ~dest:(all_groups topo) ()
  in
  let r2 = R.run_deployment d in
  Util.check_no_violations "second message safe" (Harness.Checker.check_all r2);
  Alcotest.(check bool) "wake-up message delivered by all" true
    (List.length (Harness.Run_result.deliveries_of r2 wake) = 4);
  Alcotest.(check int) "wake-up degree 2" 2 (Util.degree_of r2 wake)

let test_total_order_across_senders () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let w =
    List.concat_map
      (fun origin ->
        Harness.Workload.broadcast_single
          ~at:(Sim_time.of_ms (1 + origin)) ~origin topo)
      [ 0; 2; 4 ]
  in
  let r = run topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  (* With broadcast, every pair of processes must end with the *same*
     sequence, not just prefix-related ones. *)
  let seqs =
    List.map
      (fun p ->
        List.map
          (fun (m : Amcast.Msg.t) -> Runtime.Msg_id.to_string m.id)
          (Harness.Run_result.sequence_of r p))
      (Topology.all_pids topo)
  in
  (match seqs with
  | s0 :: rest ->
    List.iter
      (fun s -> Alcotest.(check (list string)) "identical sequences" s0 s)
      rest
  | [] -> Alcotest.fail "no processes");
  Alcotest.(check int) "three messages" 3
    (List.length (List.hd seqs))

let test_crash_in_one_group () =
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let w =
    Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 1) ~origin:0 topo
    @ Harness.Workload.broadcast_single ~at:(Sim_time.of_ms 30) ~origin:3 topo
  in
  let faults =
    [
      Harness.Runner.crash ~drop:Runtime.Engine.Lose_all_inflight
        ~at:(Sim_time.of_ms 2) 1;
    ]
  in
  let r = run topo ~faults w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_caster_crashes_after_local_rmcast () =
  (* The caster crashes right after its intra-group R-MCast, losing copies
     to part of its group; uniform agreement must still hold. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let d =
    R.deploy ~latency:Util.crisp_latency
      ~faults:
        [
          Harness.Runner.crash
            ~drop:(Runtime.Engine.Lose_to [ 1 ])
            ~at:(Sim_time.of_us 1_050) 0;
        ]
      topo
  in
  ignore
    (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:(all_groups topo) ());
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r)

let test_determinism () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let make () =
    let rng = Rng.create 9 in
    let w =
      Harness.Workload.generate ~rng ~topology:topo ~n:8
        ~dest:Harness.Workload.To_all_groups
        ~arrival:(`Poisson (Sim_time.of_ms 25))
        ()
    in
    let r = R.run ~seed:2 topo w in
    List.map
      (fun (d : Harness.Run_result.delivery_event) ->
        (d.pid, d.msg.Amcast.Msg.id, Sim_time.to_us d.at))
      r.deliveries
  in
  Alcotest.(check bool) "bit-identical delivery schedule" true
    (make () = make ())

let test_rejects_partial_dest () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0 ] ());
  Alcotest.check_raises "broadcast only"
    (Invalid_argument
       "A2.cast: atomic broadcast requires dest = all groups (use A1 or \
        Via_broadcast for multicast)") (fun () ->
      ignore (R.run_deployment d))

let test_causal_chain_order () =
  (* p3 broadcasts m2 only after delivering m1: every process must deliver
     m1 before m2 (causal order, a derived guarantee of the round
     structure). Chain a few rounds deep. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:(all_groups topo) ());
  let r1 = R.run_deployment d in
  ignore r1;
  let next_at () =
    Sim_time.add (Runtime.Engine.now (R.engine d)) (Sim_time.of_ms 10)
  in
  ignore (R.cast_at d ~at:(next_at ()) ~origin:3 ~dest:(all_groups topo) ());
  let r2 = R.run_deployment d in
  ignore r2;
  ignore (R.cast_at d ~at:(next_at ()) ~origin:1 ~dest:(all_groups topo) ());
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Util.check_no_violations "causal order"
    (Harness.Checker.causal_delivery_order r)

let test_heartbeat_fd_mode () =
  (* A2 on the heartbeat detector, with the ballot-0 coordinator of one
     group crashing mid-round. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let config =
    {
      Amcast.Protocol.Config.default with
      fd_mode =
        Amcast.Protocol.Config.Heartbeat
          { period = Sim_time.of_ms 5; timeout = Sim_time.of_ms 30 };
      consensus_timeout = Sim_time.of_ms 80;
    }
  in
  let d =
    R.deploy ~latency:Util.crisp_latency ~config
      ~faults:
        [
          Harness.Runner.crash ~drop:Runtime.Engine.Lose_all_inflight
            ~at:(Sim_time.of_ms 3) 0;
        ]
      topo
  in
  let id =
    R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:1 ~dest:(all_groups topo) ()
  in
  let r = R.run_deployment ~until:(Sim_time.of_sec 3.) d in
  Util.check_no_violations "integrity" (Harness.Checker.uniform_integrity r);
  Util.check_no_violations "prefix order"
    (Harness.Checker.uniform_prefix_order r);
  Alcotest.(check int) "all five survivors deliver" 5
    (List.length (Harness.Run_result.deliveries_of r id))

let test_scale_six_groups () =
  let topo = Topology.symmetric ~groups:6 ~per_group:4 in
  let rng = Rng.create 72 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:40
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Poisson (Sim_time.of_ms 12))
      ()
  in
  let r = R.run ~seed:9 topo w in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Util.check_no_violations "quiescence" (Harness.Checker.quiescence r);
  Alcotest.(check int) "all delivered" 40 (Harness.Metrics.delivered_count r)

let test_linger_prediction () =
  (* The Linger strategy (Section 5.3's future-work extension) still
     reaches quiescence after finitely many broadcasts, never violates
     safety, and executes more rounds than the paper's rule. *)
  let config =
    {
      Amcast.Protocol.Config.default with
      prediction = Amcast.Protocol.Config.Linger { rounds = 4 };
    }
  in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let rng = Rng.create 31 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:8
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Poisson (Sim_time.of_ms 80))
      ()
  in
  let d = R.deploy ~latency:Util.crisp_latency ~config topo in
  ignore (R.schedule d w);
  let r = R.run_deployment d in
  Util.check_no_violations "safety" (Harness.Checker.check_all r);
  Util.check_no_violations "still quiescent" (Harness.Checker.quiescence r);
  let lingering_rounds = Amcast.A2.rounds_executed (R.node d 0) in
  (* Same workload with the paper's rule executes fewer rounds. *)
  let d' = R.deploy ~latency:Util.crisp_latency topo in
  ignore (R.schedule d' w);
  ignore (R.run_deployment d');
  let naive_rounds = Amcast.A2.rounds_executed (R.node d' 0) in
  Alcotest.(check bool)
    (Fmt.str "linger runs more rounds (%d > %d)" lingering_rounds
       naive_rounds)
    true
    (lingering_rounds > naive_rounds)

let suites =
  [
    ( "a2",
      [
        Alcotest.test_case "single broadcast" `Quick test_single_broadcast;
        Alcotest.test_case "cold start: degree 2 (Thm 5.2)" `Quick
          test_cold_start_degree_two;
        Alcotest.test_case "warm rounds: degree 1 (Thm 5.1)" `Quick
          test_warm_rounds_degree_one;
        Alcotest.test_case "quiescence (Prop A.9)" `Quick
          test_quiescence_after_finite_broadcasts;
        Alcotest.test_case "restart after quiescence" `Quick
          test_restart_after_quiescence;
        Alcotest.test_case "total order across senders" `Quick
          test_total_order_across_senders;
        Alcotest.test_case "crash in one group" `Quick test_crash_in_one_group;
        Alcotest.test_case "caster crashes after local rmcast" `Quick
          test_caster_crashes_after_local_rmcast;
        Alcotest.test_case "causal chain order" `Quick
          test_causal_chain_order;
        Alcotest.test_case "heartbeat failure detector mode" `Quick
          test_heartbeat_fd_mode;
        Alcotest.test_case "scale: 6 groups x 4" `Slow test_scale_six_groups;
        Alcotest.test_case "linger prediction strategy" `Quick
          test_linger_prediction;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "rejects partial destinations" `Quick
          test_rejects_partial_dest;
      ] );
  ]

(* amcast_kv — the replicated KV service over real TCP, and its
   closed-loop load bench.

     amcast_kv bench [options]   boot a cluster on localhost, drive the
                                 multi-client load driver, crash and
                                 restart one replica mid-load (unless
                                 --no-crash), audit consistency and the
                                 protocol checkers, write BENCH_kv.json.
                                 Exits non-zero on any violation, on a
                                 failed learner catch-up or on zero
                                 committed ops — the CI smoke gate.
     amcast_kv serve [options]   boot the cluster and serve until EOF on
                                 stdin (^D) or SIGINT.
     amcast_kv client ADDR CMD   one request against a running cluster,
                                 e.g.  amcast_kv client 127.0.0.1:7400
                                 "SET fruit apple"  (follows one
                                 redirect).

   Options (bench/serve):
     --groups N       groups in the topology            (default 2)
     --per-group N    replicas per group                (default 3)
     --base-port P    first listen port; node pid p listens on P+p
                      (default 7400)
     --seed N         workload + delay-injection seed   (default 0)
     --inject wan     sample per-link delays from Net.Latency.wan_default
                      (default: no injected delay)
   Options (bench only):
     --clients N      closed-loop client threads        (default 8)
     --duration S     seconds of measured load          (default 3.0)
     --keyspace N     distinct keys                     (default 64)
     --value-bytes N  SET payload size                  (default 32)
     --no-crash       skip the mid-load crash/restart of one replica
     --out FILE       JSON output path       (default BENCH_kv.json) *)

module Svc = Transport.Kv_service.Make (Amcast.A1)

let usage () =
  prerr_endline
    "usage: amcast_kv {bench|serve} [--groups N] [--per-group N] \
     [--base-port P]\n\
    \                 [--seed N] [--inject wan] [--clients N] [--duration \
     S]\n\
    \                 [--keyspace N] [--value-bytes N] [--no-crash] [--out \
     FILE]\n\
    \       amcast_kv client HOST:PORT \"SET key value\"";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let int_arg flag value ~min =
  match int_of_string_opt value with
  | Some v when v >= min -> v
  | _ -> fail "amcast_kv: %s must be an integer >= %d" flag min

let float_arg flag value =
  match float_of_string_opt value with
  | Some v when v > 0.0 -> v
  | _ -> fail "amcast_kv: %s must be a positive number" flag

(* ------------------------------------------------------------------ *)

let json_opt_float = function
  | Some x -> Printf.sprintf "%.3f" x
  | None -> "null"

let json_string_list l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%S") l) ^ "]"

type bench_outcome = {
  params : Transport.Load.params;
  load : Transport.Load.result;
  crash_restart : bool;
  victim : int option;
  learner_synced : bool;
  committed : int array; (* commands applied per replica *)
  consistency : string list;
  checker : string list;
}

let bench_json ~groups ~per_group ~inject ~base_port (o : bench_outcome) =
  let p = o.params and l = o.load in
  let committed = Array.to_list o.committed in
  Printf.sprintf
    "{\n\
    \  \"schema\": \"amcast-bench-kv/v1\",\n\
    \  \"protocol\": \"a1\",\n\
    \  \"transport\": \"tcp-localhost\",\n\
    \  \"topology\": \"%dx%d\",\n\
    \  \"base_port\": %d,\n\
    \  \"inject\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"duration_s\": %.3f,\n\
    \  \"keyspace\": %d,\n\
    \  \"value_bytes\": %d,\n\
    \  \"get_ratio\": %.3f,\n\
    \  \"del_ratio\": %.3f,\n\
    \  \"ops\": %d,\n\
    \  \"errors\": %d,\n\
    \  \"redirects\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"throughput_ops_s\": %.1f,\n\
    \  \"mean_ms\": %s,\n\
    \  \"p50_ms\": %s,\n\
    \  \"p99_ms\": %s,\n\
    \  \"crash_restart\": %b,\n\
    \  \"victim\": %s,\n\
    \  \"learner_synced\": %b,\n\
    \  \"committed_per_replica\": [%s],\n\
    \  \"consistency_violations\": %s,\n\
    \  \"checker_violations\": %s\n\
     }\n"
    groups per_group base_port inject p.Transport.Load.seed
    p.Transport.Load.clients p.Transport.Load.duration
    p.Transport.Load.keyspace p.Transport.Load.value_bytes
    p.Transport.Load.get_ratio p.Transport.Load.del_ratio l.Transport.Load.ops
    l.Transport.Load.errors l.Transport.Load.redirects l.Transport.Load.wall_s
    l.Transport.Load.throughput
    (json_opt_float l.Transport.Load.mean_ms)
    (json_opt_float l.Transport.Load.p50_ms)
    (json_opt_float l.Transport.Load.p99_ms)
    o.crash_restart
    (match o.victim with Some p -> string_of_int p | None -> "null")
    o.learner_synced
    (String.concat ", " (List.map string_of_int committed))
    (json_string_list o.consistency)
    (json_string_list o.checker)

(* ------------------------------------------------------------------ *)

type opts = {
  mutable groups : int;
  mutable per_group : int;
  mutable base_port : int;
  mutable seed : int;
  mutable inject : string;
  mutable clients : int;
  mutable duration : float;
  mutable keyspace : int;
  mutable value_bytes : int;
  mutable crash : bool;
  mutable out : string;
}

let parse_opts args =
  let o =
    {
      groups = 2;
      per_group = 3;
      base_port = 7400;
      seed = 0;
      inject = "none";
      clients = 8;
      duration = 3.0;
      keyspace = 64;
      value_bytes = 32;
      crash = true;
      out = "BENCH_kv.json";
    }
  in
  let rec go = function
    | [] -> o
    | "--groups" :: v :: rest ->
      o.groups <- int_arg "--groups" v ~min:1;
      go rest
    | "--per-group" :: v :: rest ->
      o.per_group <- int_arg "--per-group" v ~min:1;
      go rest
    | "--base-port" :: v :: rest ->
      o.base_port <- int_arg "--base-port" v ~min:1024;
      go rest
    | "--seed" :: v :: rest ->
      o.seed <- int_arg "--seed" v ~min:0;
      go rest
    | "--inject" :: v :: rest ->
      (match v with
      | "wan" | "none" -> o.inject <- v
      | _ -> fail "amcast_kv: --inject must be \"wan\" or \"none\"");
      go rest
    | "--clients" :: v :: rest ->
      o.clients <- int_arg "--clients" v ~min:1;
      go rest
    | "--duration" :: v :: rest ->
      o.duration <- float_arg "--duration" v;
      go rest
    | "--keyspace" :: v :: rest ->
      o.keyspace <- int_arg "--keyspace" v ~min:1;
      go rest
    | "--value-bytes" :: v :: rest ->
      o.value_bytes <- int_arg "--value-bytes" v ~min:1;
      go rest
    | "--no-crash" :: rest ->
      o.crash <- false;
      go rest
    | "--out" :: v :: rest ->
      o.out <- v;
      go rest
    | (("--groups" | "--per-group" | "--base-port" | "--seed" | "--inject"
       | "--clients" | "--duration" | "--keyspace" | "--value-bytes"
       | "--out") as flag)
      :: [] -> fail "amcast_kv: %s needs an argument" flag
    | arg :: _ -> fail "amcast_kv: unknown argument %S" arg
  in
  go args

let boot o =
  let topology = Net.Topology.symmetric ~groups:o.groups ~per_group:o.per_group in
  let inject =
    match o.inject with "wan" -> Some Net.Latency.wan_default | _ -> None
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "amcast-kv-%d" (Unix.getpid ()))
  in
  let t =
    Svc.create ?inject ~seed:o.seed ~base_port:o.base_port ~dir topology
  in
  (topology, t)

(* ------------------------------------------------------------------ *)

let cmd_bench args =
  let o = parse_opts args in
  if o.crash && o.per_group < 3 then
    fail
      "amcast_kv: the crash/restart phase needs --per-group >= 3 (a \
       majority must survive); use --no-crash for smaller groups";
  let topology, t = boot o in
  let params =
    {
      Transport.Load.default with
      Transport.Load.clients = o.clients;
      duration = o.duration;
      keyspace = o.keyspace;
      value_bytes = o.value_bytes;
      seed = o.seed;
    }
  in
  let route key = Svc.addr_of t (Svc.contact_for t key) in
  (* fault injection rides on its own thread: crash the last replica of
     group 0 at 40% of the load window, restart it at 70% *)
  let victim =
    if o.crash then (
      let members = Net.Topology.members topology 0 in
      Some (List.nth members (List.length members - 1)))
    else None
  in
  let injector =
    Option.map
      (fun v ->
        Thread.create
          (fun v ->
            Thread.delay (o.duration *. 0.4);
            Printf.printf "  [fault] crashing replica p%d\n%!" v;
            Svc.crash t v;
            Thread.delay (o.duration *. 0.3);
            Printf.printf "  [fault] restarting replica p%d as learner\n%!" v;
            Svc.restart t v)
          v)
      victim
  in
  Printf.printf
    "amcast_kv bench: %dx%d cluster on 127.0.0.1:%d+, %d clients, %.1fs \
     (inject=%s, crash=%b)\n\
     %!"
    o.groups o.per_group o.base_port o.clients o.duration o.inject o.crash;
  let load = Transport.Load.run ~route params in
  Option.iter Thread.join injector;
  (* let deliveries settle, then wait for the learner to catch up *)
  let learner_synced =
    match victim with
    | None -> true
    | Some v -> Svc.await ~timeout:15.0 (fun () -> Svc.synced t v)
  in
  let settled () =
    List.for_all
      (fun g ->
        match Net.Topology.members topology g with
        | a :: rest ->
          List.for_all (fun b -> Svc.applied t b = Svc.applied t a) rest
        | [] -> true)
      (Net.Topology.all_groups topology)
  in
  ignore (Svc.await ~timeout:10.0 settled);
  let committed =
    Array.init
      (Net.Topology.n_processes topology)
      (fun p -> Svc.applied t p)
  in
  let consistency = Svc.check_consistency t in
  let checker = Harness.Checker.check_all (Svc.run_result t) in
  Svc.stop t;
  let outcome =
    {
      params;
      load;
      crash_restart = o.crash;
      victim;
      learner_synced;
      committed;
      consistency;
      checker;
    }
  in
  let json =
    bench_json ~groups:o.groups ~per_group:o.per_group ~inject:o.inject
      ~base_port:o.base_port outcome
  in
  let oc = open_out o.out in
  output_string oc json;
  close_out oc;
  Printf.printf
    "  ops %d (errors %d, redirects %d)  throughput %.1f ops/s  p50 %s ms  \
     p99 %s ms\n\
    \  committed per replica: [%s]\n\
    \  learner synced: %b   consistency violations: %d   checker \
     violations: %d\n\
    \  wrote %s\n\
     %!"
    load.Transport.Load.ops load.Transport.Load.errors
    load.Transport.Load.redirects load.Transport.Load.throughput
    (json_opt_float load.Transport.Load.p50_ms)
    (json_opt_float load.Transport.Load.p99_ms)
    (String.concat ", "
       (List.map string_of_int (Array.to_list committed)))
    learner_synced (List.length consistency) (List.length checker) o.out;
  List.iter (fun v -> Printf.printf "  consistency: %s\n" v) consistency;
  List.iter (fun v -> Printf.printf "  checker: %s\n" v) checker;
  if
    consistency <> [] || checker <> []
    || (not learner_synced)
    || load.Transport.Load.ops = 0
  then exit 1

let cmd_serve args =
  let o = parse_opts args in
  let topology, t = boot o in
  Printf.printf "amcast_kv: serving %dx%d cluster\n" o.groups o.per_group;
  List.iter
    (fun pid ->
      let host, port = Svc.addr_of t pid in
      Printf.printf "  p%d (group %d): %s:%d\n" pid
        (Net.Topology.group_of topology pid)
        host port)
    (Net.Topology.all_pids topology);
  Printf.printf "SIGINT/SIGTERM stops the cluster (so does ^D on a tty).\n%!";
  let stop _ =
    Svc.stop t;
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  let interactive = Unix.isatty Unix.stdin in
  (try
     while true do
       ignore (input_line stdin)
     done
   with End_of_file -> ());
  if interactive then Svc.stop t
  else
    (* stdin closed at launch (daemon-style): serve until a signal *)
    let rec forever () =
      Thread.delay 3600.0;
      forever ()
    in
    forever ()

let cmd_client = function
  | [ addr; line ] -> (
    let host, port =
      match String.split_on_char ':' addr with
      | [ h; p ] -> (h, int_arg "PORT" p ~min:1)
      | _ -> fail "amcast_kv: ADDR must be HOST:PORT"
    in
    let request addr =
      let c = Transport.Tcp.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Transport.Tcp.Client.close c)
        (fun () -> Transport.Tcp.Client.request c line)
    in
    let follow_redirect reply =
      match String.split_on_char ' ' reply with
      | [ "REDIRECT"; _pid; host; port ] -> (
        match int_of_string_opt port with
        | Some p -> Some (host, p)
        | None -> None)
      | _ -> None
    in
    let ok, reply =
      match request (host, port) with
      | true, r -> (true, r)
      | false, r -> (
        match follow_redirect r with
        | Some addr' -> request addr'
        | None -> (false, r))
    in
    Printf.printf "%s %s\n" (if ok then "OK" else "MISS") reply;
    exit (if ok then 0 else 1))
  | _ -> usage ()

let () =
  match Array.to_list Sys.argv with
  | _ :: "bench" :: rest -> cmd_bench rest
  | _ :: "serve" :: rest -> cmd_serve rest
  | _ :: "client" :: rest -> cmd_client rest
  | _ -> usage ()

(* amcast_soak — randomised soak campaigns over every protocol.

   Runs N random scenarios (topology, workload, crashes, jitter) per
   protocol, checks every run against the agreement specifications, and
   exits non-zero on any violation. The CI-style entry point of the
   library's chaos testing.

   With DOMAINS > 1 the scenarios of each campaign are fanned out across
   that many OCaml domains (Harness.Pool); the summaries — and the exit
   code — are bit-identical to a sequential run for any domain count.

   Usage: amcast_soak [--fast-lanes on|off] [--nemesis on|off]
                      [--batch N] [--batch-delay MS] [--pipeline W]
                      [--conflict total|key|none] [--conflict-rate R]
                      [--topology clique|hub|ring|tree]
                      [RUNS] [SEED] [DOMAINS]
   DOMAINS defaults to 1 (sequential); pass 0 for the recommended domain
   count of this machine. --fast-lanes defaults to "on"; "off" soaks the
   reference message pattern instead of the fast lanes. --nemesis defaults
   to "off"; "on" replays a seeded fault plan (partition/heal windows,
   latency spikes, FD storms, crash schedule) against every run, with
   liveness asserted only after each plan's final heal. --batch (default 1
   = off) soaks the throughput lane's cast batching with the given batch
   size, --batch-delay (ms, default 2) its flush timeout, and --pipeline
   (default 1 = sequential) its in-flight consensus-instance window; the
   summaries then report the batching/pipelining counters. --conflict
   (default "total") selects the conflict relation of the generic
   (conflict-aware) target — "key" draws keyed/commuting payload mixes
   with keyed probability --conflict-rate (default 0.5) and checks the
   relaxed conflict order, "none" makes every cast commute; the
   total-order targets always keep the full prefix-order check.
   --topology (default "clique") runs every campaign over that overlay
   geometry: latencies become routed-path delays, nemesis partitions
   follow the overlay's cut edges, flexcast routes along it, and the
   genuineness checks become overlay-aware. *)

let () =
  let config = ref Amcast.Protocol.Config.default in
  let nemesis = ref false in
  let batch = ref 1 in
  let batch_delay_ms = ref 2 in
  let pipeline = ref 1 in
  let conflict_mode = ref `Total in
  let conflict_rate = ref 0.5 in
  let overlay_kind = ref None in
  let positional = ref [] in
  let int_arg flag value ~min =
    match int_of_string_opt value with
    | Some v when v >= min -> v
    | _ ->
      Printf.eprintf "amcast_soak: %s must be an integer >= %d\n" flag min;
      exit 2
  in
  let rate_arg flag value =
    match float_of_string_opt value with
    | Some v when v >= 0.0 && v <= 1.0 -> v
    | _ ->
      Printf.eprintf "amcast_soak: %s must be a float in [0, 1]\n" flag;
      exit 2
  in
  let on_off flag value =
    match value with
    | "on" -> true
    | "off" -> false
    | _ ->
      Printf.eprintf "amcast_soak: %s must be \"on\" or \"off\"\n" flag;
      exit 2
  in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--fast-lanes" when i + 1 < Array.length Sys.argv ->
        config :=
          (if on_off "--fast-lanes" Sys.argv.(i + 1) then
             Amcast.Protocol.Config.default
           else Amcast.Protocol.Config.reference);
        parse (i + 2)
      | "--nemesis" when i + 1 < Array.length Sys.argv ->
        nemesis := on_off "--nemesis" Sys.argv.(i + 1);
        parse (i + 2)
      | "--batch" when i + 1 < Array.length Sys.argv ->
        batch := int_arg "--batch" Sys.argv.(i + 1) ~min:1;
        parse (i + 2)
      | "--batch-delay" when i + 1 < Array.length Sys.argv ->
        batch_delay_ms := int_arg "--batch-delay" Sys.argv.(i + 1) ~min:0;
        parse (i + 2)
      | "--pipeline" when i + 1 < Array.length Sys.argv ->
        pipeline := int_arg "--pipeline" Sys.argv.(i + 1) ~min:1;
        parse (i + 2)
      | "--conflict" when i + 1 < Array.length Sys.argv ->
        (conflict_mode :=
           match Sys.argv.(i + 1) with
           | "total" -> `Total
           | "key" -> `Key
           | "none" -> `None
           | _ ->
             Printf.eprintf
               "amcast_soak: --conflict must be \"total\", \"key\" or \
                \"none\"\n";
             exit 2);
        parse (i + 2)
      | "--conflict-rate" when i + 1 < Array.length Sys.argv ->
        conflict_rate := rate_arg "--conflict-rate" Sys.argv.(i + 1);
        parse (i + 2)
      | "--topology" when i + 1 < Array.length Sys.argv ->
        (match Net.Overlay.kind_of_name Sys.argv.(i + 1) with
        | Some Net.Overlay.Clique -> overlay_kind := None
        | Some k -> overlay_kind := Some k
        | None ->
          Printf.eprintf
            "amcast_soak: --topology must be \"clique\", \"hub\", \"ring\" \
             or \"tree\"\n";
          exit 2);
        parse (i + 2)
      | ("--fast-lanes" | "--nemesis" | "--batch" | "--batch-delay"
        | "--pipeline" | "--conflict" | "--conflict-rate" | "--topology") as
        flag ->
        Printf.eprintf "amcast_soak: %s needs an argument\n" flag;
        exit 2
      | a ->
        positional := a :: !positional;
        parse (i + 1)
  in
  parse 1;
  let positional = Array.of_list (List.rev !positional) in
  let config =
    {
      !config with
      Amcast.Protocol.Config.batch_max = !batch;
      batch_delay = Des.Sim_time.of_ms !batch_delay_ms;
      pipeline = !pipeline;
    }
  in
  let with_nemesis = !nemesis in
  let runs =
    if Array.length positional > 0 then int_arg "RUNS" positional.(0) ~min:1
    else 50
  in
  let seed =
    if Array.length positional > 1 then int_arg "SEED" positional.(1) ~min:0
    else 0
  in
  let domains =
    if Array.length positional > 2 then
      match int_arg "DOMAINS" positional.(2) ~min:0 with
      | 0 -> Harness.Pool.recommended_domains ()
      | d -> d
    else 1
  in
  (* Fault-tolerant protocols are soaked with crashes; the failure-free
     baselines (Figure 1's model for them) without. Quiescence holds for
     every target: all soak runs execute without a horizon and must drain.
     Causal delivery order is asserted for none — not even A2: its derived
     guarantee only covers causality that crosses rounds (the chain-style
     runs of [prop_a2_causal_chain]); under a Poisson workload an
     R-Deliver-then-cast chain can fit inside one round, whose id-sorted
     bundle delivery legitimately reorders the pair. The causal checker is
     still soak-exercised differentially (fast vs reference) by the
     checker test suite. *)
  let targets =
    [
      ( "a1",
        (module Amcast.A1 : Amcast.Protocol.S),
        false, true, true, false, true );
      ("a2", (module Amcast.A2), true, true, false, false, true);
      ("via-broadcast", (module Amcast.Via_broadcast), false, true, false, false, true);
      ("fritzke", (module Amcast.Fritzke), false, true, true, false, true);
      ("skeen", (module Amcast.Skeen), false, false, true, false, true);
      ("generic", (module Amcast.Generic), false, false, true, false, true);
      ("ring", (module Amcast.Ring), false, false, true, false, true);
      ("scalable", (module Amcast.Scalable), false, false, true, false, true);
      ("sequencer", (module Amcast.Sequencer), true, false, false, false, true);
      ("whitebox", (module Amcast.Whitebox), false, true, true, false, true);
      ("flexcast", (module Amcast.Flexcast), false, false, true, false, true);
    ]
  in
  let overlay_kind = !overlay_kind in
  (* The conflict relation only reaches the generic target's config — the
     total-order targets must keep their full prefix-order check. The
     keyed/commuting workload mix (under --conflict key) applies to every
     target so the campaigns stay comparable: total-order protocols treat
     the payloads as opaque. *)
  let conflict_rel =
    match !conflict_mode with
    | `Total -> Amcast.Conflict.total
    | `Key -> Amcast.Conflict.payload_key
    | `None -> Amcast.Conflict.never
  in
  let workload_conflict =
    match !conflict_mode with
    | `Key -> Some (Harness.Workload.conflict_spec !conflict_rate)
    | `Total | `None -> None
  in
  let failed = ref false in
  List.iter
    (fun ( name,
           proto,
           broadcast_only,
           with_crashes,
           expect_genuine,
           check_causal,
           check_quiescence ) ->
      Fmt.pr "@.== %s: %d runs%s%s%s ==@." name runs
        (if with_crashes then " (with crash injection)" else "")
        (if with_nemesis then " (with nemesis plans)" else "")
        (if domains > 1 then Fmt.str " on %d domains" domains else "");
      let config =
        if name = "generic" then
          { config with Amcast.Protocol.Config.conflict = conflict_rel }
        else config
      in
      let summary =
        Harness.Campaign.run_parallel proto ~config
          ?conflict:workload_conflict ?overlay_kind ~expect_genuine
          ~check_causal ~check_quiescence ~broadcast_only ~with_crashes
          ~with_nemesis ~domains ~seed ~runs ()
      in
      Fmt.pr "%a@." Harness.Campaign.pp_summary summary;
      if summary.failures <> [] then failed := true)
    targets;
  if !failed then exit 1 else Fmt.pr "@.soak clean.@."

(* amcast_soak — randomised soak campaigns over every protocol.

   Runs N random scenarios (topology, workload, crashes, jitter) per
   protocol, checks every run against the agreement specifications, and
   exits non-zero on any violation. The CI-style entry point of the
   library's chaos testing.

   With DOMAINS > 1 the scenarios of each campaign are fanned out across
   that many OCaml domains (Harness.Pool); the summaries — and the exit
   code — are bit-identical to a sequential run for any domain count.

   Usage: amcast_soak [--fast-lanes on|off] [--nemesis on|off]
                      [--batch N] [--batch-delay MS] [--pipeline W]
                      [RUNS] [SEED] [DOMAINS]
   DOMAINS defaults to 1 (sequential); pass 0 for the recommended domain
   count of this machine. --fast-lanes defaults to "on"; "off" soaks the
   reference message pattern instead of the fast lanes. --nemesis defaults
   to "off"; "on" replays a seeded fault plan (partition/heal windows,
   latency spikes, FD storms, crash schedule) against every run, with
   liveness asserted only after each plan's final heal. --batch (default 1
   = off) soaks the throughput lane's cast batching with the given batch
   size, --batch-delay (ms, default 2) its flush timeout, and --pipeline
   (default 1 = sequential) its in-flight consensus-instance window; the
   summaries then report the batching/pipelining counters. *)

let () =
  let config = ref Amcast.Protocol.Config.default in
  let nemesis = ref false in
  let batch = ref 1 in
  let batch_delay_ms = ref 2 in
  let pipeline = ref 1 in
  let positional = ref [] in
  let int_arg flag value ~min =
    match int_of_string_opt value with
    | Some v when v >= min -> v
    | _ ->
      Printf.eprintf "amcast_soak: %s must be an integer >= %d\n" flag min;
      exit 2
  in
  let on_off flag value =
    match value with
    | "on" -> true
    | "off" -> false
    | _ ->
      Printf.eprintf "amcast_soak: %s must be \"on\" or \"off\"\n" flag;
      exit 2
  in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--fast-lanes" when i + 1 < Array.length Sys.argv ->
        config :=
          (if on_off "--fast-lanes" Sys.argv.(i + 1) then
             Amcast.Protocol.Config.default
           else Amcast.Protocol.Config.reference);
        parse (i + 2)
      | "--nemesis" when i + 1 < Array.length Sys.argv ->
        nemesis := on_off "--nemesis" Sys.argv.(i + 1);
        parse (i + 2)
      | "--batch" when i + 1 < Array.length Sys.argv ->
        batch := int_arg "--batch" Sys.argv.(i + 1) ~min:1;
        parse (i + 2)
      | "--batch-delay" when i + 1 < Array.length Sys.argv ->
        batch_delay_ms := int_arg "--batch-delay" Sys.argv.(i + 1) ~min:0;
        parse (i + 2)
      | "--pipeline" when i + 1 < Array.length Sys.argv ->
        pipeline := int_arg "--pipeline" Sys.argv.(i + 1) ~min:1;
        parse (i + 2)
      | ("--fast-lanes" | "--nemesis" | "--batch" | "--batch-delay"
        | "--pipeline") as flag ->
        Printf.eprintf "amcast_soak: %s needs an argument\n" flag;
        exit 2
      | a ->
        positional := a :: !positional;
        parse (i + 1)
  in
  parse 1;
  let positional = Array.of_list (List.rev !positional) in
  let config =
    {
      !config with
      Amcast.Protocol.Config.batch_max = !batch;
      batch_delay = Des.Sim_time.of_ms !batch_delay_ms;
      pipeline = !pipeline;
    }
  in
  let with_nemesis = !nemesis in
  let runs =
    if Array.length positional > 0 then int_of_string positional.(0) else 50
  in
  let seed =
    if Array.length positional > 1 then int_of_string positional.(1) else 0
  in
  let domains =
    if Array.length positional > 2 then
      match int_of_string positional.(2) with
      | 0 -> Harness.Pool.recommended_domains ()
      | d when d < 0 ->
        prerr_endline "amcast_soak: DOMAINS must be >= 0";
        exit 2
      | d -> d
    else 1
  in
  (* Fault-tolerant protocols are soaked with crashes; the failure-free
     baselines (Figure 1's model for them) without. Quiescence holds for
     every target: all soak runs execute without a horizon and must drain.
     Causal delivery order is asserted for none — not even A2: its derived
     guarantee only covers causality that crosses rounds (the chain-style
     runs of [prop_a2_causal_chain]); under a Poisson workload an
     R-Deliver-then-cast chain can fit inside one round, whose id-sorted
     bundle delivery legitimately reorders the pair. The causal checker is
     still soak-exercised differentially (fast vs reference) by the
     checker test suite. *)
  let targets =
    [
      ( "a1",
        (module Amcast.A1 : Amcast.Protocol.S),
        false, true, true, false, true );
      ("a2", (module Amcast.A2), true, true, false, false, true);
      ("via-broadcast", (module Amcast.Via_broadcast), false, true, false, false, true);
      ("fritzke", (module Amcast.Fritzke), false, true, true, false, true);
      ("skeen", (module Amcast.Skeen), false, false, true, false, true);
      ("ring", (module Amcast.Ring), false, false, true, false, true);
      ("scalable", (module Amcast.Scalable), false, false, true, false, true);
      ("sequencer", (module Amcast.Sequencer), true, false, false, false, true);
    ]
  in
  let failed = ref false in
  List.iter
    (fun ( name,
           proto,
           broadcast_only,
           with_crashes,
           expect_genuine,
           check_causal,
           check_quiescence ) ->
      Fmt.pr "@.== %s: %d runs%s%s%s ==@." name runs
        (if with_crashes then " (with crash injection)" else "")
        (if with_nemesis then " (with nemesis plans)" else "")
        (if domains > 1 then Fmt.str " on %d domains" domains else "");
      let summary =
        Harness.Campaign.run_parallel proto ~config ~expect_genuine
          ~check_causal ~check_quiescence ~broadcast_only ~with_crashes
          ~with_nemesis ~domains ~seed ~runs ()
      in
      Fmt.pr "%a@." Harness.Campaign.pp_summary summary;
      if summary.failures <> [] then failed := true)
    targets;
  if !failed then exit 1 else Fmt.pr "@.soak clean.@."

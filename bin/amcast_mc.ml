(* amcast_mc — exhaustive schedule exploration over the DES.

   Where amcast_soak samples random schedules, amcast_mc enumerates them:
   it runs the DPOR-style explorer (lib/mc) over every delivery/crash
   interleaving of a small deployment, checks every terminal state against
   the agreement specifications, and reports violations as minimized,
   replayable choice-sequence trace files.

   Usage: amcast_mc [options]                 explore a configuration
          amcast_mc --replay FILE [--expect-violation]
                                              replay a saved trace

   Explore options:
     --protocol NAME        a1|a2|via-broadcast|fritzke|skeen|ring|
                            scalable|sequencer|optimistic|detmerge
                            (default a1)
     --sizes CSV            group sizes (default 2,2)
     --casts N              number of casts, 1ms apart (default 2)
     --dest CSV             destination gids (default: all groups)
     --origins CSV          cast origins, used round-robin (default 0)
     --config NAME          default|reference|fritzke (default default)
     --seed N               deployment seed (default 0)
     --intra-us N           intra-group latency, us (default 1000)
     --inter-us N           inter-group latency, us (default 50000)
     --crash AT_US:PID      clean crash-stop (repeatable; prefer AT_US 0 —
                            the crash is explored as a scheduler choice)
     --mutation SPEC        seeded bug, e.g. "drop-deliver 1 0"
     --spurious N           spurious-timer budget per path (default 0)
     --reorder N            delay bound: non-default choices per path
                            (default unlimited)
     --no-por               disable sleep-set partial-order reduction
     --fingerprints         enable state-fingerprint pruning
     --max-interleavings N  terminal-state budget (default 200000)
     --max-total-steps N    executed-event budget (default 50000000)
     --expect-genuine       also check genuineness at terminals
     --no-minimize          report the raw (unminimized) counterexample
     --trace-out FILE       write the counterexample trace file

   Exit codes: explore — 0 clean, 1 violation found, 2 usage error.
   Replay — 0 when the verdict matches the expectation (clean without
   --expect-violation, violating with it), 1 otherwise. *)

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("amcast_mc: " ^ m);
      exit 2)
    fmt

let ints_csv flag v =
  String.split_on_char ',' v
  |> List.map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some i -> i
         | None -> die "%s: bad integer list %S" flag v)

let int_arg flag v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> die "%s: bad integer %S" flag v

let () =
  let replay_file = ref None in
  let expect_violation = ref false in
  let protocol = ref "a1" in
  let sizes = ref [ 2; 2 ] in
  let casts_n = ref 2 in
  let dest = ref None in
  let origins = ref [ 0 ] in
  let config_name = ref "default" in
  let seed = ref 0 in
  let intra_us = ref 1_000 in
  let inter_us = ref 50_000 in
  let crashes = ref [] in
  let mutation = ref None in
  let spurious = ref 0 in
  let reorder = ref max_int in
  let por = ref true in
  let fingerprints = ref false in
  let max_interleavings = ref 200_000 in
  let max_total_steps = ref 50_000_000 in
  let expect_genuine = ref false in
  let minimize = ref true in
  let trace_out = ref None in
  let argv = Sys.argv in
  let rec parse i =
    if i < Array.length argv then begin
      let flag = argv.(i) in
      let value () =
        if i + 1 < Array.length argv then argv.(i + 1)
        else die "%s needs an argument" flag
      in
      match flag with
      | "--no-por" ->
        por := false;
        parse (i + 1)
      | "--fingerprints" ->
        fingerprints := true;
        parse (i + 1)
      | "--expect-genuine" ->
        expect_genuine := true;
        parse (i + 1)
      | "--no-minimize" ->
        minimize := false;
        parse (i + 1)
      | "--expect-violation" ->
        expect_violation := true;
        parse (i + 1)
      | _ ->
        let v = value () in
        (match flag with
        | "--replay" -> replay_file := Some v
        | "--protocol" -> protocol := v
        | "--sizes" -> sizes := ints_csv flag v
        | "--casts" -> casts_n := int_arg flag v
        | "--dest" -> dest := Some (ints_csv flag v)
        | "--origins" -> origins := ints_csv flag v
        | "--config" -> config_name := v
        | "--seed" -> seed := int_arg flag v
        | "--intra-us" -> intra_us := int_arg flag v
        | "--inter-us" -> inter_us := int_arg flag v
        | "--crash" -> (
          match String.split_on_char ':' v with
          | [ at; pid ] ->
            crashes := (int_arg flag at, int_arg flag pid) :: !crashes
          | _ -> die "--crash expects AT_US:PID, got %S" v)
        | "--mutation" -> (
          match Mc.Mutant.spec_of_string v with
          | Ok spec -> mutation := Some spec
          | Error e -> die "%s" e)
        | "--spurious" -> spurious := int_arg flag v
        | "--reorder" -> reorder := int_arg flag v
        | "--max-interleavings" -> max_interleavings := int_arg flag v
        | "--max-total-steps" -> max_total_steps := int_arg flag v
        | "--trace-out" -> trace_out := Some v
        | _ -> die "unknown flag %s" flag);
        parse (i + 2)
    end
  in
  parse 1;
  match !replay_file with
  | Some file -> (
    match Mc.Trace_file.load file with
    | Error e -> die "%s: %s" file e
    | Ok t -> (
      match Mc.Trace_file.replay t with
      | Error e -> die "%s: %s" file e
      | Ok (r, violations) ->
        Fmt.pr "%a@." Harness.Run_result.pp_summary r;
        if violations = [] then Fmt.pr "replay: no violations@."
        else begin
          Fmt.pr "replay: %d violation(s):@." (List.length violations);
          List.iter (fun v -> Fmt.pr "  %s@." v) violations
        end;
        if violations <> [] = !expect_violation then exit 0
        else begin
          Fmt.pr "replay: verdict does not match expectation (%s)@."
            (if !expect_violation then "--expect-violation" else "clean");
          exit 1
        end))
  | None -> (
    let pm =
      match List.assoc_opt !protocol Mc.Trace_file.protocols with
      | Some pm -> pm
      | None -> die "unknown protocol %S" !protocol
    in
    let config =
      match !config_name with
      | "default" -> Amcast.Protocol.Config.default
      | "reference" -> Amcast.Protocol.Config.reference
      | "fritzke" -> Amcast.Protocol.Config.fritzke
      | c -> die "unknown config preset %S" c
    in
    let topology = Net.Topology.make ~sizes:!sizes in
    let dest_gids =
      match !dest with
      | Some gids -> gids
      | None -> Net.Topology.all_groups topology
    in
    if !origins = [] then die "--origins must not be empty";
    let cast_tuples =
      List.init !casts_n (fun k ->
          ( (k + 1) * 1_000,
            List.nth !origins (k mod List.length !origins),
            dest_gids,
            "m" ^ string_of_int k ))
    in
    let tf =
      Mc.Trace_file.make ~seed:!seed ~intra_us:!intra_us ~inter_us:!inter_us
        ~config:!config_name ~spurious_timers:!spurious
        ~reorder_bound:!reorder ~casts:cast_tuples
        ~faults:(List.rev !crashes) ?mutation:!mutation ~protocol:!protocol
        ~sizes:!sizes ()
    in
    let (module Base : Amcast.Protocol.S) = pm in
    let (module P : Amcast.Protocol.S) =
      match !mutation with
      | None -> (module Base : Amcast.Protocol.S)
      | Some spec ->
        let module Sp = struct
          let spec = spec
        end in
        let module M = Mc.Mutant.Make (Base) (Sp) in
        (module M : Amcast.Protocol.S)
    in
    let module E = Mc.Explorer.Make (P) in
    let latency =
      Net.Latency.uniform
        ~intra:(Des.Sim_time.of_us !intra_us)
        ~inter:(Des.Sim_time.of_us !inter_us)
        ()
    in
    let workload =
      List.map
        (fun (at, origin, dest, payload) ->
          {
            Harness.Workload.at = Des.Sim_time.of_us at;
            origin;
            dest;
            payload;
          })
        cast_tuples
    in
    let faults =
      List.map
        (fun (at, pid) ->
          Harness.Runner.crash ~at:(Des.Sim_time.of_us at) pid)
        (List.rev !crashes)
    in
    let setup =
      E.make_setup ~seed:!seed ~latency ~config ~faults
        ~spurious_timers:!spurious ~reorder_bound:!reorder ~topology workload
    in
    let check r = Harness.Checker.check_all ~expect_genuine:!expect_genuine r in
    let opts =
      {
        E.default_opts with
        por = !por;
        fingerprints = !fingerprints;
        max_interleavings = !max_interleavings;
        max_total_steps = !max_total_steps;
        check;
      }
    in
    Fmt.pr "exploring %s sizes=%s casts=%d (por=%b fingerprints=%b)@."
      P.name
      (String.concat "," (List.map string_of_int !sizes))
      !casts_n !por !fingerprints;
    let t0 = Unix.gettimeofday () in
    let o = E.explore ~opts setup in
    let dt = Unix.gettimeofday () -. t0 in
    let s = o.E.stats in
    Fmt.pr
      "interleavings=%d events=%d replays=%d peak_depth=%d sleep_prunes=%d \
       fp_prunes=%d outcomes=%d exhaustive=%b (%.2fs, %.0f events/s)@."
      s.E.interleavings s.E.events s.E.replays s.E.peak_depth
      s.E.sleep_prunes s.E.fingerprint_prunes
      (List.length o.E.outcome_digests)
      s.E.exhaustive dt
      (float_of_int s.E.events /. Float.max dt 1e-9);
    match o.E.violation with
    | None ->
      Fmt.pr "no violations.@.";
      exit 0
    | Some v ->
      let choices, messages =
        if !minimize then E.minimize ~check setup v.E.choices
        else (v.E.choices, v.E.messages)
      in
      Fmt.pr "VIOLATION after %d interleavings; %sschedule (%d choices):@."
        s.E.interleavings
        (if !minimize then "minimized " else "")
        (List.length choices);
      Fmt.pr "  choices %s@."
        (String.concat "," (List.map string_of_int choices));
      List.iter (fun m -> Fmt.pr "  %s@." m) messages;
      (match !trace_out with
      | Some file ->
        Mc.Trace_file.save file
          { tf with Mc.Trace_file.choices; note = "found by amcast_mc explore" };
        Fmt.pr "trace written to %s@." file
      | None -> ());
      exit 1)

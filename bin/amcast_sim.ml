(* amcast_sim — run any protocol of the library on a simulated WAN from the
   command line and report deliveries, latency degrees, message counts and
   the correctness checks.

   Examples:
     amcast_sim --protocol a1 --groups 3 --per-group 2 --messages 10
     amcast_sim --protocol a2 --messages 5 --gap-ms 10 --print-trace
     amcast_sim --protocol a1 --crash 2@5 --seed 7 *)

open Des
open Net
open Cmdliner

type proto =
  | P_a1
  | P_a2
  | P_skeen
  | P_generic
  | P_ring
  | P_scalable
  | P_sequencer
  | P_optimistic
  | P_via_broadcast
  | P_detmerge
  | P_fritzke
  | P_whitebox
  | P_flexcast

let proto_assoc =
  [
    ("a1", P_a1);
    ("a2", P_a2);
    ("skeen", P_skeen);
    ("generic", P_generic);
    ("ring", P_ring);
    ("scalable", P_scalable);
    ("sequencer", P_sequencer);
    ("optimistic", P_optimistic);
    ("via-broadcast", P_via_broadcast);
    ("detmerge", P_detmerge);
    ("fritzke", P_fritzke);
    ("whitebox", P_whitebox);
    ("flexcast", P_flexcast);
  ]

let module_of = function
  | P_a1 -> (module Amcast.A1 : Amcast.Protocol.S)
  | P_a2 -> (module Amcast.A2)
  | P_skeen -> (module Amcast.Skeen)
  | P_generic -> (module Amcast.Generic)
  | P_ring -> (module Amcast.Ring)
  | P_scalable -> (module Amcast.Scalable)
  | P_sequencer -> (module Amcast.Sequencer)
  | P_optimistic -> (module Amcast.Optimistic)
  | P_via_broadcast -> (module Amcast.Via_broadcast)
  | P_detmerge -> (module Amcast.Detmerge)
  | P_fritzke -> (module Amcast.Fritzke)
  | P_whitebox -> (module Amcast.Whitebox)
  | P_flexcast -> (module Amcast.Flexcast)

(* Broadcast-only protocols must receive dest = all groups. *)
let broadcast_only = function
  | P_a2 | P_sequencer | P_optimistic -> true
  | P_a1 | P_skeen | P_generic | P_ring | P_scalable | P_via_broadcast
  | P_detmerge | P_fritzke | P_whitebox | P_flexcast ->
    false

(* Protocols that never quiesce need a horizon. *)
let needs_horizon = function P_detmerge -> true | _ -> false

let run_cli proto groups per_group messages seed gap_ms poisson kmax crashes
    inter_ms intra_ms horizon_ms print_trace print_timeline genuine_check
    heartbeat_fd fast_lanes batch batch_delay_ms pipeline conflict
    conflict_rate topology_kind =
  let topo = Topology.symmetric ~groups ~per_group in
  (* --topology replaces the uniform latency pair with the overlay's
     routed-path delays and hands the overlay to the protocol config
     (flexcast routes along it; clique-model protocols just pay the
     routed latencies). *)
  let overlay =
    match topology_kind with
    | None | Some Overlay.Clique -> None
    | Some k -> (
      try Some (Overlay.of_kind k ~groups)
      with Invalid_argument m ->
        Fmt.epr "amcast_sim: %s@." m;
        exit 2)
  in
  let latency =
    match overlay with
    | Some ov -> Overlay.to_latency ~intra:(Sim_time.of_ms intra_ms) ov
    | None ->
      Latency.uniform
        ~intra:(Sim_time.of_ms intra_ms)
        ~inter:(Sim_time.of_ms inter_ms)
        ()
  in
  if conflict_rate < 0.0 || conflict_rate > 1.0 then (
    Fmt.epr "amcast_sim: --conflict-rate must be in [0, 1]@.";
    exit 2);
  let conflict_rel =
    match conflict with
    | `Total -> Amcast.Conflict.total
    | `Key -> Amcast.Conflict.payload_key
    | `None -> Amcast.Conflict.never
  in
  let rng = Rng.create seed in
  let dest_kind =
    if broadcast_only proto then Harness.Workload.To_all_groups
    else Harness.Workload.Random_groups (min kmax groups)
  in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:messages ~dest:dest_kind
      ~arrival:
        (if poisson then `Poisson (Sim_time.of_ms gap_ms)
         else `Every (Sim_time.of_ms gap_ms))
      ?conflict:
        (match conflict with
        | `Key -> Some (Harness.Workload.conflict_spec conflict_rate)
        | `Total | `None -> None)
      ()
  in
  let faults =
    List.map
      (fun (pid, at_ms) ->
        Harness.Runner.crash ~at:(Sim_time.of_ms at_ms) pid)
      crashes
  in
  let until =
    match horizon_ms with
    | Some h -> Some (Sim_time.of_ms h)
    | None ->
      if needs_horizon proto then
        Some (Sim_time.of_ms (2_000 + (messages * gap_ms)))
      else None
  in
  let config =
    if heartbeat_fd then
      {
        Amcast.Protocol.Config.default with
        fd_mode =
          Amcast.Protocol.Config.Heartbeat
            {
              period = Sim_time.of_ms 5;
              timeout = Sim_time.of_ms (4 * intra_ms * 10);
            };
      }
    else Amcast.Protocol.Config.default
  in
  if batch < 1 then (
    Fmt.epr "amcast_sim: --batch must be >= 1@.";
    exit 2);
  if pipeline < 1 then (
    Fmt.epr "amcast_sim: --pipeline must be >= 1@.";
    exit 2);
  let config =
    {
      config with
      Amcast.Protocol.Config.fast_lanes;
      batch_max = batch;
      batch_delay = Sim_time.of_ms batch_delay_ms;
      pipeline;
      conflict = conflict_rel;
      overlay;
    }
  in
  let until =
    (* A heartbeat detector never quiesces: force a horizon. *)
    if heartbeat_fd && until = None then
      Some (Sim_time.of_ms (3_000 + (messages * gap_ms)))
    else until
  in
  let (module P) = module_of proto in
  let module R = Harness.Runner.Make (P) in
  let r = R.run ~seed ~latency ~config ~faults ?until topo workload in
  Fmt.pr "== %s on %d groups x %d processes ==@." P.name groups per_group;
  Fmt.pr "%a@." Harness.Run_result.pp_summary r;
  Fmt.pr "@.per-message latency degrees:@.";
  List.iter
    (fun (id, deg) ->
      Fmt.pr "  %a: %s@." Runtime.Msg_id.pp id
        (match deg with Some d -> string_of_int d | None -> "undelivered"))
    (Harness.Metrics.latency_degrees r);
  (match Harness.Metrics.mean_delivery_latency_ms r with
  | Some l -> Fmt.pr "@.mean cast-to-last-delivery: %.1fms@." l
  | None -> ());
  Fmt.pr "@.inter-group messages by kind:@.";
  List.iter
    (fun (tag, n) -> Fmt.pr "  %-16s %d@." tag n)
    (Harness.Metrics.messages_by_tag r);
  if print_trace then Fmt.pr "@.trace:@.%a@." Runtime.Trace.pp r.trace;
  if print_timeline then
    Fmt.pr "@.timeline:@.%a@."
      (Harness.Trace_render.pp ?max_rows:None ~topology:topo)
      r.trace;
  let violations =
    Harness.Checker.check_all ~expect_genuine:genuine_check
      ?conflict:
        (match conflict with `Total -> None | `Key | `None -> Some conflict_rel)
      ?overlay r
  in
  if violations = [] then begin
    Fmt.pr "@.all correctness checks passed.@.";
    0
  end
  else begin
    Fmt.pr "@.VIOLATIONS:@.%a@."
      Fmt.(list ~sep:(any "@.") string)
      violations;
    1
  end

(* ----- cmdliner terms ----- *)

let proto_t =
  let protocol_conv = Arg.enum proto_assoc in
  Arg.(
    value
    & opt protocol_conv P_a1
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:
          "Protocol to run: $(b,a1) (genuine atomic multicast), $(b,a2) \
           (atomic broadcast), $(b,generic) (conflict-aware multicast, see \
           $(b,--conflict)), $(b,whitebox) (leader/convoy genuine \
           multicast), $(b,flexcast) (overlay-routed genuine multicast, \
           see $(b,--topology)), or a baseline ($(b,skeen), $(b,ring), \
           $(b,scalable), $(b,sequencer), $(b,optimistic), \
           $(b,via-broadcast), $(b,detmerge), $(b,fritzke)).")

let groups_t =
  Arg.(value & opt int 3 & info [ "g"; "groups" ] ~doc:"Number of groups.")

let per_group_t =
  Arg.(
    value & opt int 2
    & info [ "d"; "per-group" ] ~doc:"Processes per group.")

let messages_t =
  Arg.(value & opt int 5 & info [ "n"; "messages" ] ~doc:"Messages to cast.")

let seed_t = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let gap_t =
  Arg.(
    value & opt int 20
    & info [ "gap-ms" ] ~doc:"Cast interval (or Poisson mean) in ms.")

let poisson_t =
  Arg.(value & flag & info [ "poisson" ] ~doc:"Poisson arrivals.")

let kmax_t =
  Arg.(
    value & opt int 3
    & info [ "k" ] ~doc:"Maximum destination groups per multicast.")

let crash_t =
  let parse s =
    match String.split_on_char '@' s with
    | [ pid; at ] -> (
      match (int_of_string_opt pid, int_of_string_opt at) with
      | Some pid, Some at -> Ok (pid, at)
      | _ -> Error (`Msg "expected PID@MS"))
    | _ -> Error (`Msg "expected PID@MS")
  in
  let print ppf (pid, at) = Fmt.pf ppf "%d@%d" pid at in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "crash" ] ~docv:"PID@MS"
        ~doc:"Crash process $(i,PID) at $(i,MS) milliseconds (repeatable).")

let inter_t =
  Arg.(
    value & opt int 50
    & info [ "inter-ms" ] ~doc:"Inter-group latency in ms.")

let intra_t =
  Arg.(
    value & opt int 1 & info [ "intra-ms" ] ~doc:"Intra-group latency in ms.")

let horizon_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "until-ms" ] ~doc:"Stop the simulation at this virtual time.")

let trace_t =
  Arg.(value & flag & info [ "print-trace" ] ~doc:"Dump the event trace.")

let timeline_t =
  Arg.(
    value & flag
    & info [ "print-timeline" ]
        ~doc:"Render the trace as a per-process timeline.")

let heartbeat_t =
  Arg.(
    value & flag
    & info [ "fd-heartbeat" ]
        ~doc:
          "Drive A1/A2 consensus with the message-based heartbeat failure \
           detector instead of the oracle (never quiescent: a horizon is \
           applied).")

let fast_lanes_t =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "fast-lanes" ] ~docv:"on|off"
        ~doc:
          "Steady-state message-path fast lanes (Multi-Paxos lease, \
           coordinator-only decide, relay-bounded uniform R-MCast, \
           broadcast network events, state GC). $(b,off) runs the \
           reference message pattern.")

let batch_t =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Throughput lane: pack up to $(i,N) casts sharing a destination \
           set into one R-MCast (flushed at size $(i,N) or after \
           $(b,--batch-delay)); timestamp fan-outs of one consensus \
           instance merge likewise. $(b,1) (default) disables batching \
           and keeps the wire pattern byte-identical to the unbatched \
           lane. Delivery is per-cast either way.")

let batch_delay_t =
  Arg.(
    value & opt int 2
    & info [ "batch-delay" ] ~docv:"MS"
        ~doc:
          "Maximum time a buffered cast waits before its batch is flushed \
           (milliseconds; only meaningful with $(b,--batch) > 1).")

let pipeline_t =
  Arg.(
    value & opt int 1
    & info [ "pipeline" ] ~docv:"W"
        ~doc:
          "Throughput lane: keep up to $(i,W) consensus instances in \
           flight per group (decisions still apply in instance order). \
           $(b,1) (default) proposes sequentially, one instance at a \
           time.")

let genuine_t =
  Arg.(
    value & flag
    & info [ "check-genuine" ]
        ~doc:"Additionally check genuineness (for multicast protocols).")

let conflict_t =
  Arg.(
    value
    & opt (enum [ ("total", `Total); ("key", `Key); ("none", `None) ]) `Total
    & info [ "conflict" ] ~docv:"total|key|none"
        ~doc:
          "Conflict relation for the $(b,generic) protocol (ignored by \
           total-order protocols, but it also selects the ordering check): \
           $(b,total) = every pair conflicts (classic total order), \
           $(b,key) = per-key conflicts over the workload's \
           $(b,k=<key>;...) payloads, with the keyed/commuting mix drawn \
           from $(b,--conflict-rate), $(b,none) = nothing conflicts \
           (ordering-free reliable multicast).")

let conflict_rate_t =
  Arg.(
    value & opt float 0.5
    & info [ "conflict-rate" ] ~docv:"R"
        ~doc:
          "With $(b,--conflict key): probability in [0, 1] that a cast is \
           a keyed (conflicting) command rather than a commuting one.")

let topology_t =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("clique", Overlay.Clique);
                ("hub", Overlay.Hub);
                ("ring", Overlay.Ring);
                ("tree", Overlay.Tree);
              ]))
        None
    & info [ "topology" ] ~docv:"clique|hub|ring|tree"
        ~doc:
          "Overlay geometry over the groups. The latency between two \
           groups becomes their routed-path delay through the overlay, \
           and $(b,flexcast) forwards messages hop by hop along it. \
           Default (and $(b,clique)): the classic full-mesh WAN model.")

let cmd =
  let doc = "simulate atomic broadcast/multicast protocols on a WAN" in
  let info = Cmd.info "amcast_sim" ~doc in
  Cmd.v info
    Term.(
      const run_cli $ proto_t $ groups_t $ per_group_t $ messages_t $ seed_t
      $ gap_t $ poisson_t $ kmax_t $ crash_t $ inter_t $ intra_t $ horizon_t
      $ trace_t $ timeline_t $ genuine_t $ heartbeat_t $ fast_lanes_t
      $ batch_t $ batch_delay_t $ pipeline_t $ conflict_t $ conflict_rate_t
      $ topology_t)

let () = exit (Cmd.eval' cmd)
